"""Fused evaluation planner: one pass over shared formula structure.

Experiments evaluate *portfolios* of formulas against the same system —
E4 sweeps a dozen ``C□`` axioms over the same four facts, E5 checks two
Proposition 4.3 conditions per processor per protocol, E21 compares
``C``/``C◇``/``C□`` over the same operands — and each
:meth:`~repro.knowledge.formulas.Formula.evaluate` call walks its own
tree, re-dispatching one kernel sweep per modal node.  The per-system
formula cache already deduplicates *exact* repeats, but sibling nodes
that could share a pass (four beliefs of one processor, two fixpoints
over the same nonrigid set) still run one sweep each.

:class:`EvalPlan` collects a portfolio up front, deduplicates subterms
structurally (by ``cache_key``), and evaluates the whole DAG in
topological waves.  Within a wave, sibling modal nodes are *fused*:

* ``K_i`` nodes with the same processor run as one
  :meth:`~repro.model.chunked.ChunkedIndex.knows_limbs_many` matrix
  sweep — one gather/segmented-reduce over an ``(F, limbs)`` stack
  instead of F scalar passes;
* ``B_i^S`` nodes with the same processor and nonrigid set share the
  membership gather through ``believes_limbs_many``;
* ``E_S`` nodes with the same nonrigid set share the per-processor
  membership passes through ``everyone_limbs_many``;
* fixpoint nodes (``C_S`` / ``C◇_S`` / ``C□_S`` in fixpoint form) with
  the same nonrigid set and post-sweep iterate **in lockstep sharing one
  frontier**: each round retires state groups against the union of every
  row's freshly eliminated points, one gather per processor per round
  (:meth:`~repro.model.chunked.ChunkedIndex.fixpoint_many`);
* run-level ``C□_S`` nodes take the Corollary 3.3 component fast path,
  whose labelling is memoized per nonrigid set on the system — every
  such node after the first is a shared-component lookup.

Fusion engages on the chunked kernel's numpy (matrix-capable) backend;
on the bitset/reference kernels — or the pure-Python chunked backend —
the plan still deduplicates subterms and evaluates each node once, so
results are identical on every kernel (the parity tests in
``tests/test_kernels.py`` assert exactly that).

Every result is seeded into the system's kernel-qualified formula cache,
so the experiment's subsequent per-formula ``evaluate`` calls are cache
hits and its verdict logic runs unchanged — planner on or off can never
change a verdict, only the number of kernel sweeps.

Activation: :func:`use_planner` (tests), the ``REPRO_EVAL_PLANNER`` env
var, or the CLI's ``run --plan`` flag.  Experiments guard their
portfolio prefetch with :func:`prefetch`, which no-ops when the planner
is inactive.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple
from weakref import WeakKeyDictionary

from .. import obs, trace
from ..model.chunked import ChunkedAssignment
from ..model.system import System, TruthAssignment
from . import semantics
from .formulas import (
    Believes,
    Common,
    ContinualCommon,
    EventualCommon,
    Everyone,
    Formula,
    Knows,
)

PLANNER_ENV = "REPRO_EVAL_PLANNER"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Test/CLI override; ``None`` defers to the environment variable.
_FORCED: Optional[bool] = None


def planner_active() -> bool:
    """Whether experiment portfolio prefetches route through the planner."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(PLANNER_ENV, "").strip().lower() in _TRUTHY


@contextmanager
def use_planner(enabled: bool = True) -> Iterator[None]:
    """Force the planner on (or off) for the enclosed block."""
    global _FORCED
    previous = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = previous


#: Per-system memo of the limb-block decomposition used for component
#: seeding.  Maps system -> (partition, nf_limbs) or False once a build
#: attempt failed/was ineligible (so we never retry per formula).
_BLOCK_PARTS: "WeakKeyDictionary[System, object]" = WeakKeyDictionary()


def _block_partition(system: System):
    """The (partition, nonfaulty limbs) pair for *system*, or ``None``.

    Only the provider's canonical exhaustive cells are eligible: a
    restricted/explicit-adversary system carries the same ``mode/n/t/
    horizon`` stamp but enumerates a *subset* of runs, so seeding it
    from the provider's arrays would be wrong.  The identity check
    against :meth:`~repro.model.provider.SystemProvider.peek` rules
    those out.
    """
    cached = _BLOCK_PARTS.get(system)
    if cached is not None:
        return cached if cached is not False else None
    result: object = False
    try:
        from ..model.partition import LimbBlockPartition
        from ..model.provider import get_provider

        provider = get_provider()
        mode = getattr(system, "mode", None)
        if (
            mode is not None
            and provider.peek(mode, system.n, system.t, system.horizon)
            is system
        ):
            arrays = provider.get_arrays(
                mode, system.n, system.t, system.horizon
            )
            partition = LimbBlockPartition.from_arrays(arrays)
            nf_limbs = [
                partition.nonfaulty_limbs(p) for p in range(system.n)
            ]
            result = (partition, nf_limbs)
    except Exception:  # pragma: no cover - defensive: fall back to scan
        result = False
    try:
        _BLOCK_PARTS[system] = result
    except TypeError:  # weakref-less stand-in (tests)
        pass
    return result if result is not False else None


def seed_block_components(system: System, nonrigid) -> bool:
    """Seed a run-level ``C□_S`` component labelling via limb blocks.

    Computes the Corollary 3.3 reachability partition block-by-block
    over the system's :class:`~repro.model.partition.LimbBlockPartition`
    and welds the per-block labels with
    :func:`~repro.model.partition.merge_component_labels`, then plants
    the result in :meth:`~repro.model.system.System.cached_components`
    under the nonrigid set's key — the same cache the monolithic
    component scan fills, and partition-identical to it (label *values*
    may differ; every consumer is partition-only).  Returns whether a
    labelling was seeded.
    """
    from .nonrigid import Nonfaulty, NonfaultyAndDeciding

    key = nonrigid.cache_key()
    if key in system._components_cache:
        return False
    if isinstance(nonrigid, NonfaultyAndDeciding):
        states: Optional[Iterable[int]] = nonrigid._states
    elif isinstance(nonrigid, Nonfaulty):
        states = None  # every view: resolved off the partition below
    else:
        return False
    built = _block_partition(system)
    if built is None:
        return False
    partition, nf_limbs = built
    if states is None:
        states = range(partition.num_views)
    from ..model.partition import merge_component_labels

    flags = partition.state_flags(states)
    block_results = [
        partition.component_labels(desc["block"], flags, nf_limbs)
        for desc in partition.block_descriptors()
    ]
    labels = [
        int(label)
        for label in merge_component_labels(partition.num_runs, block_results)
    ]
    system.cached_components(key, lambda: labels)
    obs.count("planner_block_components")
    return True


def _children(formula: Formula) -> List[Formula]:
    """Immediate subformulas, across the AST's child attribute spellings."""
    out: List[Formula] = []
    for attr in ("operand", "antecedent", "consequent", "left", "right"):
        child = getattr(formula, attr, None)
        if isinstance(child, Formula):
            out.append(child)
    operands = getattr(formula, "operands", None)
    if operands:
        out.extend(op for op in operands if isinstance(op, Formula))
    return out


def _fixpoint_kind(node: Formula) -> Optional[str]:
    """Which lockstep-fusable fixpoint *node* is, if any."""
    if isinstance(node, Common):
        return "common"
    if isinstance(node, EventualCommon):
        return "eventual"
    if isinstance(node, ContinualCommon) and (
        node.force_fixpoint or not node.operand.is_run_level()
    ):
        # Run-level C□ without force_fixpoint takes the component fast
        # path instead — memoized per nonrigid set, so it shares too.
        return "continual"
    return None


class EvalPlan:
    """A deduplicated evaluation schedule for a portfolio of formulas.

    Build with :meth:`add`, execute with :meth:`run`.  Running seeds the
    system's formula cache; read results with ``formula.evaluate(system)``
    afterwards (a cache hit) or via :func:`evaluate_formulas`.
    """

    def __init__(self, system: System) -> None:
        self.system = system
        self._nodes: Dict[object, Formula] = {}
        self._child_keys: Dict[object, List[object]] = {}
        self.stats: Dict[str, int] = {
            "formulas": 0,
            "nodes": 0,
            "waves": 0,
            "fused_sweeps": 0,
            "fused_rows": 0,
            "block_component_seeds": 0,
        }

    def add(self, *formulas: Formula) -> "EvalPlan":
        """Register formulas (and transitively their subterms)."""
        stack = list(formulas)
        self.stats["formulas"] += len(formulas)
        while stack:
            node = stack.pop()
            key = node.cache_key()
            if key in self._nodes:
                continue
            self._nodes[key] = node
            children = _children(node)
            self._child_keys[key] = [child.cache_key() for child in children]
            stack.extend(children)
        self.stats["nodes"] = len(self._nodes)
        return self

    # -- execution ---------------------------------------------------------

    def run(self) -> Dict[str, int]:
        """Evaluate every node once, fusing sibling sweeps; returns stats."""
        obs.count("planner_plans")
        with obs.stage("planner_run"), trace.span(
            "planner.run", nodes=len(self._nodes)
        ):
            pending = dict(self._child_keys)
            done: set = set()
            while pending:
                wave = [
                    key
                    for key, deps in pending.items()
                    if all(dep in done for dep in deps)
                ]
                if not wave:  # pragma: no cover - ASTs are acyclic
                    raise RuntimeError("cycle in formula DAG")
                self.stats["waves"] += 1
                self._run_wave([self._nodes[key] for key in wave])
                for key in wave:
                    del pending[key]
                    done.add(key)
        obs.count("planner_nodes_evaluated", len(done))
        return dict(self.stats)

    def _run_wave(self, nodes: List[Formula]) -> None:
        """Evaluate one topological wave, grouping fusable siblings."""
        groups: Dict[object, List[Formula]] = {}
        rest: List[Formula] = []
        for node in nodes:
            kind = _fixpoint_kind(node)
            if kind is not None:
                groups.setdefault(
                    ("fix", kind, node.nonrigid.cache_key()), []
                ).append(node)
            elif isinstance(node, Knows):
                groups.setdefault(("K", node.processor), []).append(node)
            elif isinstance(node, Believes):
                groups.setdefault(
                    ("B", node.processor, node.nonrigid.cache_key()), []
                ).append(node)
            elif isinstance(node, Everyone):
                groups.setdefault(
                    ("E", node.nonrigid.cache_key()), []
                ).append(node)
            else:
                rest.append(node)
        for node in rest:
            if (
                isinstance(node, ContinualCommon)
                and not node.force_fixpoint
                and node.operand.is_run_level()
            ):
                # Run-level C□ takes the component fast path; hand it a
                # labelling welded from limb-block shards when the cell
                # is eligible, so the planner's first such node costs a
                # blocked sweep instead of a monolithic scan.
                if seed_block_components(self.system, node.nonrigid):
                    self.stats["block_component_seeds"] += 1
            node.evaluate(self.system)
        for group_key, members in groups.items():
            self._run_group(group_key[0], members)

    def _operands(self, members: List[Formula]) -> List[TruthAssignment]:
        return [node.operand.evaluate(self.system) for node in members]

    def _fusable(self, phis: List[TruthAssignment]) -> bool:
        """Fusion needs >1 chunked operand and a matrix-capable index."""
        if len(phis) < 2:
            return False
        if not all(isinstance(phi, ChunkedAssignment) for phi in phis):
            return False
        return self.system.chunked_index().matrix_capable()

    def _seed(self, node: Formula, assignment: TruthAssignment) -> None:
        self.system.cached_evaluation(
            node.cache_key(), lambda: assignment
        )

    def _count_fused(self, rows: int) -> None:
        self.stats["fused_sweeps"] += 1
        self.stats["fused_rows"] += rows
        obs.count("planner_fused_sweeps")
        obs.count("planner_fused_rows", rows)

    def _run_group(self, shape: str, members: List[Formula]) -> None:
        system = self.system
        phis = self._operands(members)
        if not self._fusable(phis):
            for node in members:
                node.evaluate(system)
            return
        cindex = system.chunked_index()
        limbs = [phi.limbs for phi in phis]
        template = phis[0]
        if shape == "K":
            outs = cindex.knows_limbs_many(members[0].processor, limbs)
        elif shape == "B":
            pmask = semantics._member_limbs(
                system, cindex, members[0].nonrigid
            )[members[0].processor]
            outs = cindex.believes_limbs_many(
                members[0].processor, pmask, limbs
            )
        elif shape == "E":
            member_masks = semantics._member_limbs(
                system, cindex, members[0].nonrigid
            )
            outs = cindex.everyone_limbs_many(member_masks, limbs)
        else:  # fixpoint lockstep
            member_masks = semantics._member_limbs(
                system, cindex, members[0].nonrigid
            )
            kind = _fixpoint_kind(members[0])
            post: Callable[[object], object]
            if kind == "eventual":
                post = cindex.eventually_limbs
            elif kind == "continual":
                post = cindex.at_all_times_limbs
            else:
                post = lambda matrix: matrix  # noqa: E731
            outs, _iters = cindex.fixpoint_many(member_masks, limbs, post)
        self._count_fused(len(members))
        for node, out in zip(members, outs):
            self._seed(node, template._replace(out))


def evaluate_formulas(
    system: System, formulas: Iterable[Formula]
) -> List[TruthAssignment]:
    """Evaluate a portfolio through one :class:`EvalPlan`.

    The returned assignments are in input order; every subterm is also
    left in the system's formula cache.
    """
    formulas = list(formulas)
    plan = EvalPlan(system)
    plan.add(*formulas)
    plan.run()
    return [formula.evaluate(system) for formula in formulas]


def prefetch(system: System, formulas: Iterable[Formula]) -> bool:
    """Run a portfolio through the planner **iff** it is active.

    Experiments call this with the formulas their checks are about to
    evaluate; with the planner off it costs nothing, with it on the
    subsequent per-formula ``evaluate`` calls become cache hits on the
    fused results.  Returns whether a plan ran.
    """
    if not planner_active():
        return False
    formulas = list(formulas)
    if not formulas:
        return False
    evaluate_formulas(system, formulas)
    return True
