"""Formula AST for the knowledge logic of Section 3.

Formulas are immutable trees; every node knows how to evaluate itself over a
:class:`~repro.model.system.System` (producing a
:class:`~repro.model.system.TruthAssignment`) and exposes a structural
``cache_key`` so repeated evaluation of the same formula over the same
system is free.

Nodes mirror the paper's language:

========================  =====================================
paper                     here
========================  =====================================
``∃0`` / ``∃1``           :class:`Exists`
``¬ φ``                   :class:`Not`
``φ ∧ ψ``                 :class:`And`
``φ ⇒ ψ``                 :class:`Implies`
``K_i φ``                 :class:`Knows`
``B_i^S φ``               :class:`Believes`
``E_S φ``                 :class:`Everyone`
``C_S φ``                 :class:`Common`
``□ φ`` / ``◇ φ``         :class:`Always` / :class:`Eventually`
``⊡ φ``                   :class:`AtAllTimes`
``E□_S φ``                :class:`EveryoneBox`
``C□_S φ``                :class:`ContinualCommon`
``i ∈ N``                 :class:`IsNonfaulty`
``S = ∅``                 :class:`SetEmpty`
``decide_i(v)``           :class:`Decided`
========================  =====================================

Run-level facts (those whose truth is time-independent, like ``∃0``) report
``is_run_level() == True``; :class:`ContinualCommon` exploits this to use the
fast reachability-component evaluator of Corollary 3.3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Sequence, Tuple

from ..core.decision_sets import DecisionPair
from ..core.values import Value, check_value
from ..model.system import System, TruthAssignment
from . import semantics
from .nonrigid import NONFAULTY, NonrigidSet


class Formula(ABC):
    """Base class for knowledge-logic formulas."""

    @abstractmethod
    def cache_key(self) -> object:
        """Structural key identifying the formula for caching."""

    @abstractmethod
    def _evaluate(self, system: System) -> TruthAssignment:
        """Compute the truth assignment (no caching)."""

    def evaluate(self, system: System) -> TruthAssignment:
        """Truth assignment over *system*, memoized on the system."""
        return system.cached_evaluation(
            self.cache_key(), lambda: self._evaluate(system)
        )

    def holds_at(self, system: System, run_index: int, time: int) -> bool:
        """``(R, r, m) |= φ`` for the point ``(run_index, time)``."""
        return self.evaluate(system).at(run_index, time)

    def is_valid(self, system: System) -> bool:
        """``R |= φ``: truth at every point of *system*."""
        return self.evaluate(system).is_valid()

    def is_run_level(self) -> bool:
        """Whether truth is time-independent within each run."""
        return False

    # -- combinators (ergonomic sugar) --------------------------------------

    def negate(self) -> "Formula":
        return Not(self)

    def and_(self, other: "Formula") -> "Formula":
        return And((self, other))

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)


class TrueFormula(Formula):
    """The constant ``true``."""

    def cache_key(self) -> object:
        return ("true",)

    def _evaluate(self, system: System) -> TruthAssignment:
        return TruthAssignment.constant(system, True)

    def is_run_level(self) -> bool:
        return True


class FalseFormula(Formula):
    """The constant ``false``."""

    def cache_key(self) -> object:
        return ("false",)

    def _evaluate(self, system: System) -> TruthAssignment:
        return TruthAssignment.constant(system, False)

    def is_run_level(self) -> bool:
        return True


TRUE = TrueFormula()
FALSE = FalseFormula()


class Exists(Formula):
    """The run-level fact ``∃v``: some processor started with value ``v``."""

    def __init__(self, value: Value) -> None:
        self.value = check_value(value)

    def cache_key(self) -> object:
        return ("exists", self.value)

    def _evaluate(self, system: System) -> TruthAssignment:
        return TruthAssignment.from_run_levels(
            system, [run.exists(self.value) for run in system.runs]
        )

    def is_run_level(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"∃{self.value}"


class AllStarted(Formula):
    """Run-level fact: *every* processor started with value ``v``."""

    def __init__(self, value: Value) -> None:
        self.value = check_value(value)

    def cache_key(self) -> object:
        return ("all-started", self.value)

    def _evaluate(self, system: System) -> TruthAssignment:
        return TruthAssignment.from_run_levels(
            system,
            [run.config.all_equal(self.value) for run in system.runs],
        )

    def is_run_level(self) -> bool:
        return True


class IsNonfaulty(Formula):
    """The atom ``i ∈ N`` (time-independent under the EBA convention)."""

    def __init__(self, processor: int) -> None:
        self.processor = processor

    def cache_key(self) -> object:
        return ("is-nonfaulty", self.processor)

    def _evaluate(self, system: System) -> TruthAssignment:
        return TruthAssignment.from_run_levels(
            system,
            [run.is_nonfaulty(self.processor) for run in system.runs],
        )

    def is_run_level(self) -> bool:
        return True


class InitialValueIs(Formula):
    """Run-level fact: processor ``i`` started with value ``v``."""

    def __init__(self, processor: int, value: Value) -> None:
        self.processor = processor
        self.value = check_value(value)

    def cache_key(self) -> object:
        return ("initial-value", self.processor, self.value)

    def _evaluate(self, system: System) -> TruthAssignment:
        return TruthAssignment.from_run_levels(
            system,
            [
                run.config.value_of(self.processor) == self.value
                for run in system.runs
            ],
        )

    def is_run_level(self) -> bool:
        return True


class Decided(Formula):
    """``decide_i(v)``: processor ``i`` is deciding or has decided ``v``
    under the decision pair's full-information protocol.

    Truth at a point is simply membership of the processor's state in the
    (recall-closed) decision set — the paper's reading of ``decide_i(v)`` as
    "decides *or has decided*" (Section 4).
    """

    def __init__(self, pair: DecisionPair, processor: int, value: Value) -> None:
        self.pair = pair
        self.processor = processor
        self.value = check_value(value)

    def cache_key(self) -> object:
        return ("decided", self.pair.token, self.processor, self.value)

    def _evaluate(self, system: System) -> TruthAssignment:
        states = self.pair.zeros if self.value == 0 else self.pair.ones
        return TruthAssignment.from_states(system, self.processor, states)


class SetEmpty(Formula):
    """The atom ``S(r, m) = ∅`` for a nonrigid set ``S``."""

    def __init__(self, nonrigid: NonrigidSet) -> None:
        self.nonrigid = nonrigid

    def cache_key(self) -> object:
        return ("set-empty", self.nonrigid.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        members = self.nonrigid.members_matrix(system)
        return TruthAssignment.from_predicate(
            system, lambda run_index, time: not members[run_index][time]
        )


class Predicate(Formula):
    """Escape hatch: an arbitrary point predicate with an explicit key.

    Useful for facts computed outside the AST (e.g. the 0-chain fact ``∃0*``
    in :mod:`repro.knowledge.chains`).  The caller owns key uniqueness.
    """

    def __init__(
        self,
        key: object,
        compute: Callable[[System], TruthAssignment],
        run_level: bool = False,
    ) -> None:
        self._key = key
        self._compute = compute
        self._run_level = run_level

    def cache_key(self) -> object:
        return ("predicate", self._key)

    def _evaluate(self, system: System) -> TruthAssignment:
        return self._compute(system)

    def is_run_level(self) -> bool:
        return self._run_level


class Not(Formula):
    """Negation ``¬ φ``."""

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def cache_key(self) -> object:
        return ("not", self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return self.operand.evaluate(system).negate()

    def is_run_level(self) -> bool:
        return self.operand.is_run_level()


class And(Formula):
    """Conjunction over any number of operands."""

    def __init__(self, operands: Sequence[Formula]) -> None:
        self.operands: Tuple[Formula, ...] = tuple(operands)

    def cache_key(self) -> object:
        return ("and",) + tuple(op.cache_key() for op in self.operands)

    def _evaluate(self, system: System) -> TruthAssignment:
        result = TruthAssignment.constant(system, True)
        for operand in self.operands:
            result = result.conjoin(operand.evaluate(system))
        return result

    def is_run_level(self) -> bool:
        return all(op.is_run_level() for op in self.operands)


class Or(Formula):
    """Disjunction over any number of operands."""

    def __init__(self, operands: Sequence[Formula]) -> None:
        self.operands: Tuple[Formula, ...] = tuple(operands)

    def cache_key(self) -> object:
        return ("or",) + tuple(op.cache_key() for op in self.operands)

    def _evaluate(self, system: System) -> TruthAssignment:
        result = TruthAssignment.constant(system, False)
        for operand in self.operands:
            result = result.disjoin(operand.evaluate(system))
        return result

    def is_run_level(self) -> bool:
        return all(op.is_run_level() for op in self.operands)


class Implies(Formula):
    """Material implication ``φ ⇒ ψ``."""

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        self.antecedent = antecedent
        self.consequent = consequent

    def cache_key(self) -> object:
        return (
            "implies",
            self.antecedent.cache_key(),
            self.consequent.cache_key(),
        )

    def _evaluate(self, system: System) -> TruthAssignment:
        return self.antecedent.evaluate(system).implies(
            self.consequent.evaluate(system)
        )

    def is_run_level(self) -> bool:
        return self.antecedent.is_run_level() and self.consequent.is_run_level()


class Iff(Formula):
    """Biconditional ``φ ⇔ ψ``."""

    def __init__(self, left: Formula, right: Formula) -> None:
        self.left = left
        self.right = right

    def cache_key(self) -> object:
        return ("iff", self.left.cache_key(), self.right.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        left = self.left.evaluate(system)
        right = self.right.evaluate(system)
        return left.implies(right).conjoin(right.implies(left))

    def is_run_level(self) -> bool:
        return self.left.is_run_level() and self.right.is_run_level()


class Knows(Formula):
    """``K_i φ``."""

    def __init__(self, processor: int, operand: Formula) -> None:
        self.processor = processor
        self.operand = operand

    def cache_key(self) -> object:
        return ("K", self.processor, self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_knows(
            system, self.processor, self.operand.evaluate(system)
        )


class Believes(Formula):
    """``B_i^S φ = K_i(i ∈ S ⇒ φ)``; defaults to ``S = N``."""

    def __init__(
        self,
        processor: int,
        operand: Formula,
        nonrigid: NonrigidSet = NONFAULTY,
    ) -> None:
        self.processor = processor
        self.operand = operand
        self.nonrigid = nonrigid

    def cache_key(self) -> object:
        return (
            "B",
            self.processor,
            self.nonrigid.cache_key(),
            self.operand.cache_key(),
        )

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_believes(
            system, self.nonrigid, self.processor, self.operand.evaluate(system)
        )


class Everyone(Formula):
    """``E_S φ``."""

    def __init__(self, nonrigid: NonrigidSet, operand: Formula) -> None:
        self.nonrigid = nonrigid
        self.operand = operand

    def cache_key(self) -> object:
        return ("E", self.nonrigid.cache_key(), self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_everyone(
            system, self.nonrigid, self.operand.evaluate(system)
        )


class Common(Formula):
    """Common knowledge ``C_S φ``."""

    def __init__(self, nonrigid: NonrigidSet, operand: Formula) -> None:
        self.nonrigid = nonrigid
        self.operand = operand

    def cache_key(self) -> object:
        return ("C", self.nonrigid.cache_key(), self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_common(
            system, self.nonrigid, self.operand.evaluate(system)
        )


class EventualCommon(Formula):
    """Eventual common knowledge ``C◇_S φ`` ([HM90]; paper, Section 3.2).

    Greatest fixed point of ``X ↔ ◇ E_S(φ ∧ X)`` — "eventually everyone
    will know that eventually everyone will know that … φ".  Strictly
    weaker than both ``C_S`` and ``C□_S``; the paper introduces it to show
    why a weakening of common knowledge cannot drive EBA decisions and a
    *strengthening* (continual common knowledge) is needed.
    """

    def __init__(self, nonrigid: NonrigidSet, operand: Formula) -> None:
        self.nonrigid = nonrigid
        self.operand = operand

    def cache_key(self) -> object:
        return (
            "C-diamond",
            self.nonrigid.cache_key(),
            self.operand.cache_key(),
        )

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_eventual_common(
            system, self.nonrigid, self.operand.evaluate(system)
        )


class Always(Formula):
    """Temporal ``□ φ`` (now and at all later times)."""

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def cache_key(self) -> object:
        return ("always", self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_always(system, self.operand.evaluate(system))


class Eventually(Formula):
    """Temporal ``◇ φ`` (now or at some later time)."""

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def cache_key(self) -> object:
        return ("eventually", self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_eventually(system, self.operand.evaluate(system))


class AtAllTimes(Formula):
    """The paper's ``⊡ φ``: φ at every time of the run."""

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def cache_key(self) -> object:
        return ("at-all-times", self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_at_all_times(system, self.operand.evaluate(system))

    def is_run_level(self) -> bool:
        return True


class EveryoneBox(Formula):
    """``E□_S φ = ⊡ E_S φ``."""

    def __init__(self, nonrigid: NonrigidSet, operand: Formula) -> None:
        self.nonrigid = nonrigid
        self.operand = operand

    def cache_key(self) -> object:
        return ("E-box", self.nonrigid.cache_key(), self.operand.cache_key())

    def _evaluate(self, system: System) -> TruthAssignment:
        return semantics.eval_everyone_box(
            system, self.nonrigid, self.operand.evaluate(system)
        )

    def is_run_level(self) -> bool:
        return True


class ContinualCommon(Formula):
    """Continual common knowledge ``C□_S φ`` (paper, Section 3.3).

    Uses the Corollary 3.3 reachability-component algorithm when φ is
    run-level, falling back to the greatest-fixed-point definition
    otherwise.  Set ``force_fixpoint=True`` to bypass the fast path (tests
    use this to cross-check the two implementations).
    """

    def __init__(
        self,
        nonrigid: NonrigidSet,
        operand: Formula,
        *,
        force_fixpoint: bool = False,
    ) -> None:
        self.nonrigid = nonrigid
        self.operand = operand
        self.force_fixpoint = force_fixpoint

    def cache_key(self) -> object:
        return (
            "C-box",
            self.nonrigid.cache_key(),
            self.operand.cache_key(),
            self.force_fixpoint,
        )

    def _evaluate(self, system: System) -> TruthAssignment:
        phi = self.operand.evaluate(system)
        if self.operand.is_run_level() and not self.force_fixpoint:
            return semantics.eval_continual_common_components(
                system, self.nonrigid, phi.run_levels()
            )
        return semantics.eval_continual_common(system, self.nonrigid, phi)

    def is_run_level(self) -> bool:
        # Lemma 3.4(g): C□_S φ ⇒ ⊡ C□_S φ — truth is per-run.
        return True


# -- readable constructors ---------------------------------------------------

def exists(value: Value) -> Formula:
    """``∃value``."""
    return Exists(value)


def believes_nonfaulty(processor: int, operand: Formula) -> Formula:
    """``B_i^N φ`` — the workhorse belief of the paper."""
    return Believes(processor, operand, NONFAULTY)


def continual_common(nonrigid: NonrigidSet, operand: Formula) -> Formula:
    """``C□_S φ``."""
    return ContinualCommon(nonrigid, operand)
