"""Machine-checkable axiom suites for the knowledge operators.

The paper states (Proposition 3.1) that ``K_i`` satisfies S5 and
(Lemma 3.4) that continual common knowledge satisfies K45 plus the
fixed-point axiom, the induction rule and ``C□_S φ ⇒ ⊡ C□_S φ``.  This
module turns each property into an executable check over an enumerated
system; the E3/E4 experiments and the test suite run them wholesale.

Each checker returns a list of human-readable failure descriptions —
empty means the property holds everywhere it was checked.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..model.system import System
from .formulas import (
    And,
    AtAllTimes,
    Common,
    ContinualCommon,
    Everyone,
    EveryoneBox,
    Formula,
    Implies,
    Knows,
    Not,
)
from .nonrigid import NonrigidSet

CheckResult = List[str]


def _check_valid(system: System, formula: Formula, label: str) -> CheckResult:
    if formula.is_valid(system):
        return []
    assignment = formula.evaluate(system)
    for run_index, row in enumerate(assignment.values):
        for time, value in enumerate(row):
            if not value:
                run = system.runs[run_index]
                return [
                    f"{label} fails at run#{run_index} "
                    f"(config={run.config}, pattern={run.pattern}) time {time}"
                ]
    return []  # pragma: no cover - unreachable


def check_s5(
    system: System, processor: int, phis: Sequence[Formula], psis: Sequence[Formula]
) -> CheckResult:
    """Proposition 3.1: the S5 properties of ``K_i``.

    * knowledge generalization — checked as: for each valid φ, ``K_i φ`` is
      valid;
    * distribution, knowledge, positive and negative introspection — checked
      as validities for each φ (paired with each ψ for distribution).
    """
    failures: CheckResult = []
    for index, phi in enumerate(phis):
        knows_phi = Knows(processor, phi)
        if phi.is_valid(system):
            failures += _check_valid(
                system, knows_phi, f"generalization K_{processor}(φ{index})"
            )
        failures += _check_valid(
            system,
            Implies(knows_phi, phi),
            f"knowledge axiom K_{processor}(φ{index}) ⇒ φ{index}",
        )
        failures += _check_valid(
            system,
            Implies(knows_phi, Knows(processor, knows_phi)),
            f"positive introspection for φ{index}",
        )
        failures += _check_valid(
            system,
            Implies(Not(knows_phi), Knows(processor, Not(knows_phi))),
            f"negative introspection for φ{index}",
        )
        for jndex, psi in enumerate(psis):
            failures += _check_valid(
                system,
                Implies(
                    And((knows_phi, Knows(processor, Implies(phi, psi)))),
                    Knows(processor, psi),
                ),
                f"distribution for (φ{index}, ψ{jndex})",
            )
    return failures


def check_continual_common_k45(
    system: System,
    nonrigid: NonrigidSet,
    phis: Sequence[Formula],
    psis: Sequence[Formula],
) -> CheckResult:
    """Lemma 3.4 (a)-(d): K45-style properties of ``C□_S``."""
    failures: CheckResult = []
    for index, phi in enumerate(phis):
        c_phi = ContinualCommon(nonrigid, phi)
        if phi.is_valid(system):
            failures += _check_valid(
                system, c_phi, f"C□ generalization (φ{index})"
            )
        failures += _check_valid(
            system,
            Implies(c_phi, ContinualCommon(nonrigid, c_phi)),
            f"C□ positive introspection (φ{index})",
        )
        failures += _check_valid(
            system,
            Implies(Not(c_phi), ContinualCommon(nonrigid, Not(c_phi))),
            f"C□ negative introspection (φ{index})",
        )
        for jndex, psi in enumerate(psis):
            failures += _check_valid(
                system,
                Implies(
                    And(
                        (
                            c_phi,
                            ContinualCommon(nonrigid, Implies(phi, psi)),
                        )
                    ),
                    ContinualCommon(nonrigid, psi),
                ),
                f"C□ distribution (φ{index}, ψ{jndex})",
            )
    return failures


def check_fixed_point(
    system: System, nonrigid: NonrigidSet, phi: Formula
) -> CheckResult:
    """Lemma 3.4(e): ``C□_S φ ⇒ E□_S(φ ∧ C□_S φ)``."""
    c_phi = ContinualCommon(nonrigid, phi)
    return _check_valid(
        system,
        Implies(c_phi, EveryoneBox(nonrigid, And((phi, c_phi)))),
        "C□ fixed-point axiom",
    )


def check_induction_rule(
    system: System, nonrigid: NonrigidSet, phi: Formula, psi: Formula
) -> CheckResult:
    """Lemma 3.4(f): if ``φ ⇒ E□_S(φ ∧ ψ)`` is valid, so is ``φ ⇒ C□_S ψ``.

    Vacuously passes when the premise is not valid in *system*.
    """
    premise = Implies(phi, EveryoneBox(nonrigid, And((phi, psi))))
    if not premise.is_valid(system):
        return []
    return _check_valid(
        system,
        Implies(phi, ContinualCommon(nonrigid, psi)),
        "C□ induction rule",
    )


def check_run_invariance(
    system: System, nonrigid: NonrigidSet, phi: Formula
) -> CheckResult:
    """Lemma 3.4(g): ``C□_S φ ⇒ ⊡ C□_S φ`` (truth is per-run)."""
    c_phi = ContinualCommon(nonrigid, phi)
    return _check_valid(
        system, Implies(c_phi, AtAllTimes(c_phi)), "C□ run-invariance"
    )


def check_continual_implies_common(
    system: System, nonrigid: NonrigidSet, phi: Formula
) -> CheckResult:
    """``C□_S φ ⇒ C_S φ`` — continual common knowledge is stronger.

    (Section 3.3: the converse fails in general; tests exhibit a witness.)
    """
    return _check_valid(
        system,
        Implies(ContinualCommon(nonrigid, phi), Common(nonrigid, phi)),
        "C□ ⇒ C",
    )


def check_everyone_unfolds(
    system: System, nonrigid: NonrigidSet, phi: Formula, depth: int = 3
) -> CheckResult:
    """``C□_S φ ⇒ (E□_S)^k φ`` for ``k = 1..depth`` (the defining
    conjunction, finitely truncated)."""
    failures: CheckResult = []
    c_phi = ContinualCommon(nonrigid, phi)
    layered: Formula = phi
    for k in range(1, depth + 1):
        layered = EveryoneBox(nonrigid, layered)
        failures += _check_valid(
            system, Implies(c_phi, layered), f"C□ ⇒ (E□)^{k} φ"
        )
    return failures
