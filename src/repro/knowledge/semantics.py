"""Core evaluation routines for the knowledge formalism.

This module implements the satisfaction relation of Section 3 of the paper
over enumerated systems:

* ``K_i φ`` — knowledge as truth at all same-state points;
* ``B_i^S φ = K_i(i ∈ S ⇒ φ)`` — belief relative to a nonrigid set;
* ``E_S φ`` — "everyone in S believes";
* ``C_S φ`` — common knowledge, as the greatest fixed point of
  ``X ↔ E_S(φ ∧ X)``;
* ``□ / ◇ / ⊡`` — temporal operators (present-and-future always /
  eventually, and the paper's all-times ``⊡``);
* ``E□_S φ = ⊡ E_S φ`` and **continual common knowledge** ``C□_S φ`` as the
  greatest fixed point of ``X ↔ E□_S(φ ∧ X)``, plus the fast
  reachability-component algorithm of Corollary 3.3 for run-level facts.

All functions take and return :class:`~repro.model.system.TruthAssignment`
matrices; formula-level caching lives in :mod:`repro.knowledge.formulas`.

Every evaluator is implemented three times (see :mod:`repro.model.kernels`):

* the **bitset kernel** operates on packed point bitmasks.  ``K_i φ``
  becomes one subset test per distinct local state against the
  :class:`~repro.model.system.BitsetIndex` group masks; temporal operators
  sweep time columns; the fixpoints run a *changed-frontier* iteration
  that only re-examines local states whose relevant points were eliminated
  in the previous round (greatest-fixed-point iterates shrink
  monotonically, so belief verdicts flip true→false at most once);
* the **chunked kernel** runs the same algorithms over 64-bit limb
  arrays via the :class:`~repro.model.chunked.ChunkedIndex`: group tests
  touch only the limbs a state's points occupy, and the fixpoints drive
  the changed-frontier iteration with a *dirty-limb* set, so huge
  systems (beyond ``BITSET_POINT_LIMIT``) stay on a packed fast path;
* the **reference kernel** is the original list-of-lists evaluator,
  retained as an executable specification — differential tests assert all
  kernels produce identical assignments on every formula in the explain
  catalogs.

Dispatch is by representation: operands built under the bitset kernel are
:class:`~repro.model.system.BitsetAssignment` instances, chunked operands
are :class:`~repro.model.chunked.ChunkedAssignment` instances, and both
take their fast paths; reference assignments take the original ones.

Finite-horizon caveat: temporal operators treat the horizon as the end of
time.  For the run-level and monotone facts used throughout the paper this
is exact provided the horizon exceeds all decision times (see DESIGN.md).

Incremental extension and cache invalidation: every memo these evaluators
feed — the formula cache (``System.cached_evaluation``, keyed per resolved
kernel), nonrigid member matrices, component labellings, and the packed
kernel indexes — lives **on the System instance**, and
:func:`~repro.model.system.extend_system` returns a *new* System per
horizon step.  A verdict computed at horizon ``h`` can therefore never be
served for the extended horizon-``h+1`` system: the caches are
horizon-qualified structurally, by instance identity, with nothing to
invalidate.  The base system keeps its caches and stays fully usable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .. import obs, trace
from ..model.chunked import ChunkedAssignment, ChunkedIndex
from ..model.system import (
    BitsetAssignment,
    BitsetIndex,
    Point,
    System,
    TruthAssignment,
)
from .nonrigid import NonrigidSet


def _reference_rows(system: System, value: bool) -> List[List[bool]]:
    """Mutable all-*value* rows for the reference evaluators.

    The reference branches build their results by mutating rows in place,
    so they must not go through the kernel-dispatching
    ``TruthAssignment.constant`` factory: under a packed kernel that
    returns an assignment whose ``.values`` is a materialized throwaway
    copy, and the mutations would be lost.
    """
    return [
        [value] * (system.horizon + 1) for _ in range(len(system.runs))
    ]


# -- bitset kernel helpers ----------------------------------------------------

def _member_masks(
    system: System, index: BitsetIndex, nonrigid: NonrigidSet
) -> List[int]:
    """Per-processor bitmask of points where the processor is in ``S``.

    Memoized on the system's :class:`BitsetIndex` by the nonrigid set's
    cache key.
    """
    key = nonrigid.cache_key()
    masks = index.member_masks.get(key)
    if masks is None:
        members = nonrigid.members_matrix(system)
        masks = [0] * system.n
        width = index.width
        for run_index, row in enumerate(members):
            base = run_index * width
            for time, cell in enumerate(row):
                if cell:
                    bit = 1 << (base + time)
                    for processor in cell:
                        masks[processor] |= bit
        index.member_masks[key] = masks
    return masks


# -- chunked kernel helpers ---------------------------------------------------

def _member_limbs(
    system: System, index: ChunkedIndex, nonrigid: NonrigidSet
) -> List[object]:
    """Per-processor limb buffer of points where the processor is in ``S``.

    Memoized on the system's :class:`ChunkedIndex` by the nonrigid set's
    cache key (the chunked twin of :func:`_member_masks`).
    """
    key = nonrigid.cache_key()
    masks = index.member_masks.get(key)
    if masks is None:
        masks = index.pack_member_masks(nonrigid.members_matrix(system))
        index.member_masks[key] = masks
    return masks


def _believes_mask(
    index: BitsetIndex, processor: int, pmask: int, phi_mask: int
) -> int:
    """``B_i^S φ`` as a mask: per distinct state of *processor*, true iff
    φ holds at every same-state point where the processor is an S-member
    (vacuously true when there is none)."""
    not_phi = ~phi_mask
    result = 0
    for gmask in index.groups[processor]:
        if not (gmask & pmask) & not_phi:
            result |= gmask
    return result


def _everyone_mask(
    system: System,
    index: BitsetIndex,
    member_masks: List[int],
    phi_mask: int,
) -> int:
    """``E_S φ`` as a mask (vacuously true where ``S`` is empty)."""
    bad = 0
    for processor in range(system.n):
        pmask = member_masks[processor]
        if pmask:
            belief = _believes_mask(index, processor, pmask, phi_mask)
            bad |= pmask & ~belief
    return index.full & ~bad


def _always_mask(index: BitsetIndex, mask: int) -> int:
    """``□`` column sweep: suffix-AND within each run's bit block."""
    width = index.width
    column = index.col0 << (width - 1)
    previous = mask & column
    result = previous
    for _ in range(width - 1):
        column >>= 1
        previous = mask & column & (previous >> 1)
        result |= previous
    return result


def _eventually_mask(index: BitsetIndex, mask: int) -> int:
    """``◇`` column sweep: suffix-OR within each run's bit block."""
    width = index.width
    column = index.col0 << (width - 1)
    previous = mask & column
    result = previous
    for _ in range(width - 1):
        column >>= 1
        previous = column & (mask | (previous >> 1))
        result |= previous
    return result


def _at_all_times_mask(index: BitsetIndex, mask: int) -> int:
    """``⊡``: fold all time columns of a run onto its col0 bit, then
    broadcast the per-run verdict back across the run's window."""
    folded = mask
    for shift in range(1, index.width):
        folded &= mask >> shift
    return index.spread_run_levels(folded & index.col0)


def _bitset_fixpoint(
    system: System,
    nonrigid: NonrigidSet,
    phi: BitsetAssignment,
    post: Callable[[int], int],
) -> Tuple[int, int]:
    """Greatest fixed point of ``X ↔ post(E_S(φ ∧ X))`` on masks.

    Returns ``(final mask, iterations)``.  Runs the standard downward
    iteration from all-true, but with a changed-frontier inner loop: the
    iterates shrink monotonically, so a local state's belief verdict can
    only flip true→false, and only when the eliminated frontier (``delta``)
    intersects the state's relevant points.  States are dropped from the
    alive list the moment they fail, so late iterations touch only the
    shrinking frontier instead of rescanning every state.
    """
    index = system.bitset_index()
    member_masks = _member_masks(system, index, nonrigid)
    full = index.full
    phi_mask = phi.mask
    processors = [p for p in range(system.n) if member_masks[p]]
    # Seed with operand = φ ∧ all-true = φ: belief verdict per alive state.
    alive: Dict[int, List[int]] = {}
    bad = 0
    operand = phi_mask
    not_operand = ~operand
    for processor in processors:
        pmask = member_masks[processor]
        keep: List[int] = []
        for gmask in index.groups[processor]:
            if (gmask & pmask) & not_operand:
                bad |= pmask & gmask
            else:
                keep.append(gmask)
        alive[processor] = keep
    current = full
    iterations = 0
    while True:
        obs.count("fixpoint_iterations")
        iterations += 1
        candidate = post(full & ~bad)
        if candidate == current:
            obs.observe("fixpoint_iterations_per_call", iterations)
            return current, iterations
        new_operand = phi_mask & candidate
        delta = operand & ~new_operand
        if delta:
            for processor in processors:
                pmask = member_masks[processor]
                touched = delta & pmask
                if not touched:
                    continue
                keep = []
                for gmask in alive[processor]:
                    if gmask & touched:
                        # A previously-satisfying point was eliminated:
                        # the subset test now fails by construction.
                        bad |= pmask & gmask
                    else:
                        keep.append(gmask)
                alive[processor] = keep
        operand = new_operand
        current = candidate


# -- state operators ----------------------------------------------------------

def eval_knows(
    system: System, processor: int, phi: TruthAssignment
) -> TruthAssignment:
    """``K_i φ``: truth of φ at every point where ``i`` has the same state.

    Knowledge is state-determined, so the result is computed once per
    distinct local state of *processor* and broadcast to all points sharing
    it.
    """
    if isinstance(phi, BitsetAssignment):
        index = system.bitset_index()
        phi_mask = phi.mask
        result = 0
        for gmask in index.groups[processor]:
            if phi_mask & gmask == gmask:
                result |= gmask
        return phi._replace(result)
    if isinstance(phi, ChunkedAssignment):
        cindex = system.chunked_index()
        return phi._replace(cindex.knows_limbs(processor, phi.limbs))
    rows = _reference_rows(system, False)
    seen: Dict[int, bool] = {}
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            view = run.view(processor, time)
            value = seen.get(view)
            if value is None:
                value = all(
                    phi.at(other_run, other_time)
                    for other_run, other_time in system.same_state_points(view)
                )
                seen[view] = value
            rows[run_index][time] = value
    return TruthAssignment(rows)


def eval_believes(
    system: System,
    nonrigid: NonrigidSet,
    processor: int,
    phi: TruthAssignment,
) -> TruthAssignment:
    """``B_i^S φ = K_i(i ∈ S ⇒ φ)``.

    True at ``(r, m)`` iff φ holds at every same-state point ``(r', m')``
    with ``i ∈ S(r', m')``.  Vacuously true when no such point exists —
    matching the paper's observation that ``B_i^S`` is a *belief*: it does
    not imply φ when ``i ∉ S``.
    """
    if isinstance(phi, BitsetAssignment):
        index = system.bitset_index()
        pmask = _member_masks(system, index, nonrigid)[processor]
        return phi._replace(
            _believes_mask(index, processor, pmask, phi.mask)
        )
    if isinstance(phi, ChunkedAssignment):
        cindex = system.chunked_index()
        pmask = _member_limbs(system, cindex, nonrigid)[processor]
        return phi._replace(
            cindex.believes_limbs(processor, pmask, phi.limbs)
        )
    members = nonrigid.members_matrix(system)
    rows = _reference_rows(system, False)
    seen: Dict[int, bool] = {}
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            view = run.view(processor, time)
            value = seen.get(view)
            if value is None:
                value = all(
                    phi.at(other_run, other_time)
                    for other_run, other_time in system.same_state_points(view)
                    if processor in members[other_run][other_time]
                )
                seen[view] = value
            rows[run_index][time] = value
    return TruthAssignment(rows)


def eval_everyone(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``E_S φ = ∧_{i ∈ S} B_i^S φ`` (vacuously true when ``S`` is empty)."""
    if isinstance(phi, BitsetAssignment):
        index = system.bitset_index()
        member_masks = _member_masks(system, index, nonrigid)
        return phi._replace(
            _everyone_mask(system, index, member_masks, phi.mask)
        )
    if isinstance(phi, ChunkedAssignment):
        cindex = system.chunked_index()
        member_limbs = _member_limbs(system, cindex, nonrigid)
        return phi._replace(
            cindex.everyone_limbs(member_limbs, phi.limbs)
        )
    members = nonrigid.members_matrix(system)
    beliefs = [
        eval_believes(system, nonrigid, processor, phi)
        for processor in range(system.n)
    ]
    rows = _reference_rows(system, True)
    for run_index in range(len(system.runs)):
        for time in range(system.horizon + 1):
            for processor in members[run_index][time]:
                if not beliefs[processor].at(run_index, time):
                    rows[run_index][time] = False
                    break
    return TruthAssignment(rows)


def eval_common(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``C_S φ``: greatest fixed point of ``X ↔ E_S(φ ∧ X)``.

    Iterates downward from the all-true assignment; each iteration strictly
    shrinks the true set until stable, so termination is guaranteed on a
    finite system.
    """
    with trace.span("fixpoint.common") as fixpoint_span:
        if isinstance(phi, BitsetAssignment):
            mask, iterations = _bitset_fixpoint(
                system, nonrigid, phi, lambda m: m
            )
            fixpoint_span.set("iterations", iterations)
            return phi._replace(mask)
        if isinstance(phi, ChunkedAssignment):
            cindex = system.chunked_index()
            limbs, iterations = cindex.fixpoint(
                _member_limbs(system, cindex, nonrigid),
                phi.limbs,
                lambda m: m,
            )
            fixpoint_span.set("iterations", iterations)
            return phi._replace(limbs)
        iterations = 0
        current = TruthAssignment(_reference_rows(system, True))
        while True:
            obs.count("fixpoint_iterations")
            iterations += 1
            candidate = eval_everyone(system, nonrigid, phi.conjoin(current))
            if candidate == current:
                obs.observe("fixpoint_iterations_per_call", iterations)
                fixpoint_span.set("iterations", iterations)
                return current
            current = candidate


def eval_always(system: System, phi: TruthAssignment) -> TruthAssignment:
    """``□ φ``: φ holds now and at all later times of the run."""
    if isinstance(phi, BitsetAssignment):
        return phi._replace(_always_mask(system.bitset_index(), phi.mask))
    if isinstance(phi, ChunkedAssignment):
        return phi._replace(
            system.chunked_index().always_limbs(phi.limbs)
        )
    rows = _reference_rows(system, False)
    for run_index in range(len(system.runs)):
        holds = True
        for time in range(system.horizon, -1, -1):
            holds = holds and phi.at(run_index, time)
            rows[run_index][time] = holds
        # `holds` intentionally carried across the descending sweep.
    return TruthAssignment(rows)


def eval_eventually(system: System, phi: TruthAssignment) -> TruthAssignment:
    """``◇ φ``: φ holds now or at some later time of the run."""
    if isinstance(phi, BitsetAssignment):
        return phi._replace(
            _eventually_mask(system.bitset_index(), phi.mask)
        )
    if isinstance(phi, ChunkedAssignment):
        return phi._replace(
            system.chunked_index().eventually_limbs(phi.limbs)
        )
    rows = _reference_rows(system, False)
    for run_index in range(len(system.runs)):
        holds = False
        for time in range(system.horizon, -1, -1):
            holds = holds or phi.at(run_index, time)
            rows[run_index][time] = holds
    return TruthAssignment(rows)


def eval_at_all_times(system: System, phi: TruthAssignment) -> TruthAssignment:
    """The paper's ``⊡ φ``: φ holds at *every* time of the run (past,
    present and future) — a run-level property."""
    if isinstance(phi, BitsetAssignment):
        return phi._replace(
            _at_all_times_mask(system.bitset_index(), phi.mask)
        )
    if isinstance(phi, ChunkedAssignment):
        return phi._replace(
            system.chunked_index().at_all_times_limbs(phi.limbs)
        )
    rows = _reference_rows(system, False)
    for run_index in range(len(system.runs)):
        holds = all(phi.at(run_index, time) for time in range(system.horizon + 1))
        for time in range(system.horizon + 1):
            rows[run_index][time] = holds
    return TruthAssignment(rows)


def eval_everyone_box(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``E□_S φ = ⊡ E_S φ`` (paper, Section 3.3)."""
    return eval_at_all_times(system, eval_everyone(system, nonrigid, phi))


def eval_continual_common(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``C□_S φ``: greatest fixed point of ``X ↔ E□_S(φ ∧ X)``.

    This is the reference (semantic-definition) evaluator; for run-level φ
    the component algorithm :func:`eval_continual_common_components` is
    equivalent (Corollary 3.3) and much faster.  Tests cross-check the two.
    """
    with trace.span("fixpoint.continual_common") as fixpoint_span:
        if isinstance(phi, BitsetAssignment):
            index = system.bitset_index()
            mask, iterations = _bitset_fixpoint(
                system,
                nonrigid,
                phi,
                lambda m: _at_all_times_mask(index, m),
            )
            fixpoint_span.set("iterations", iterations)
            return phi._replace(mask)
        if isinstance(phi, ChunkedAssignment):
            cindex = system.chunked_index()
            limbs, iterations = cindex.fixpoint(
                _member_limbs(system, cindex, nonrigid),
                phi.limbs,
                cindex.at_all_times_limbs,
            )
            fixpoint_span.set("iterations", iterations)
            return phi._replace(limbs)
        iterations = 0
        current = TruthAssignment(_reference_rows(system, True))
        while True:
            obs.count("fixpoint_iterations")
            iterations += 1
            candidate = eval_everyone_box(
                system, nonrigid, phi.conjoin(current)
            )
            if candidate == current:
                obs.observe("fixpoint_iterations_per_call", iterations)
                fixpoint_span.set("iterations", iterations)
                return current
            current = candidate


def eval_eventual_common(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """Eventual common knowledge ``C◇_S φ`` ([HM90]; paper, Section 3.2).

    "Eventually everyone will know that eventually everyone will know
    that … φ": the greatest fixed point of ``X ↔ ◇ E_S(φ ∧ X)``.  The
    paper's Section 3.2 uses it to motivate continual common knowledge —
    ``C◇`` is *too weak* a basis for a decision rule on its own (both
    ``C◇∃0`` and ``C◇∃1`` can be known by different processors at once),
    which is exactly what experiment E21 exhibits.

    Satisfies ``◇ C_S φ ⇒ C◇_S φ`` (if φ ever becomes common knowledge it
    is eventual common knowledge) — checked in tests.
    """
    with trace.span("fixpoint.eventual_common") as fixpoint_span:
        if isinstance(phi, BitsetAssignment):
            index = system.bitset_index()
            mask, iterations = _bitset_fixpoint(
                system,
                nonrigid,
                phi,
                lambda m: _eventually_mask(index, m),
            )
            fixpoint_span.set("iterations", iterations)
            return phi._replace(mask)
        if isinstance(phi, ChunkedAssignment):
            cindex = system.chunked_index()
            limbs, iterations = cindex.fixpoint(
                _member_limbs(system, cindex, nonrigid),
                phi.limbs,
                cindex.eventually_limbs,
            )
            fixpoint_span.set("iterations", iterations)
            return phi._replace(limbs)
        iterations = 0
        current = TruthAssignment(_reference_rows(system, True))
        while True:
            obs.count("fixpoint_iterations")
            iterations += 1
            candidate = eval_eventually(
                system, eval_everyone(system, nonrigid, phi.conjoin(current))
            )
            if candidate == current:
                obs.observe("fixpoint_iterations_per_call", iterations)
                fixpoint_span.set("iterations", iterations)
                return current
            current = candidate


class _UnionFind:
    """Minimal union-find over run indices (path halving + union by size)."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.size = [1] * size

    def find(self, item: int) -> int:
        parent = self.parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self.size[root_a] < self.size[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        self.size[root_a] += self.size[root_b]


def run_reachability_components(
    system: System, nonrigid: NonrigidSet
) -> List[int]:
    """S-□-reachability components over runs (Corollary 3.3).

    Two runs are linked when some processor, while a member of ``S``, has
    the same local state at a point of each — exactly the one-step relation
    of the paper's ``S-□-reachability``, which (per Lemma 3.4(g)) depends
    only on the runs, not the times.  Returns, for each run index, a
    component representative; runs with **no** ``S`` occurrence at any point
    get the sentinel ``-1`` (no point is reachable from them, so any
    ``C□_S φ`` holds there vacuously).

    The scan walks the system's same-state index (one occurrence list per
    distinct view) rather than re-deriving each point's view, linking every
    run in a view's occurrence list — restricted to points where the view's
    owner is an ``S``-member — to the first such run.

    Labellings are memoized on the system per nonrigid set (the explanation
    machinery asks for the same components once per explained point); treat
    the returned list as read-only.
    """
    return system.cached_components(
        nonrigid.cache_key(), lambda: _compute_components(system, nonrigid)
    )


def _compute_components(system: System, nonrigid: NonrigidSet) -> List[int]:
    members = nonrigid.members_matrix(system)
    uf = _UnionFind(len(system.runs))
    has_occurrence = [False] * len(system.runs)
    table = system.table
    for view, points in system._state_index.items():
        owner = table.info(view).processor
        anchor = -1
        for run_index, time in points:
            if owner in members[run_index][time]:
                has_occurrence[run_index] = True
                if anchor < 0:
                    anchor = run_index
                else:
                    uf.union(anchor, run_index)
    return [
        uf.find(run_index) if has_occurrence[run_index] else -1
        for run_index in range(len(system.runs))
    ]


def eval_continual_common_components(
    system: System,
    nonrigid: NonrigidSet,
    run_level_phi: List[bool],
) -> TruthAssignment:
    """Fast ``C□_S φ`` for run-level φ via reachability components.

    ``C□_S φ`` holds at (every point of) run ``r`` iff φ holds in every run
    of ``r``'s S-□-reachability component; runs without any ``S``
    occurrence satisfy it vacuously.

    Args:
        run_level_phi: ``run_level_phi[run_index]`` — truth of φ in the run
            (φ must be time-independent).
    """
    with obs.stage("reachability_components"), trace.span(
        "reachability_components", runs=len(system.runs)
    ):
        components = run_reachability_components(system, nonrigid)
    component_ok: Dict[int, bool] = {}
    for run_index, component in enumerate(components):
        if component == -1:
            continue
        component_ok[component] = component_ok.get(component, True) and (
            run_level_phi[run_index]
        )
    return TruthAssignment.from_run_levels(
        system,
        [
            True if component == -1 else component_ok[component]
            for component in components
        ],
    )
