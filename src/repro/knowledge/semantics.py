"""Core evaluation routines for the knowledge formalism.

This module implements the satisfaction relation of Section 3 of the paper
over enumerated systems:

* ``K_i φ`` — knowledge as truth at all same-state points;
* ``B_i^S φ = K_i(i ∈ S ⇒ φ)`` — belief relative to a nonrigid set;
* ``E_S φ`` — "everyone in S believes";
* ``C_S φ`` — common knowledge, as the greatest fixed point of
  ``X ↔ E_S(φ ∧ X)``;
* ``□ / ◇ / ⊡`` — temporal operators (present-and-future always /
  eventually, and the paper's all-times ``⊡``);
* ``E□_S φ = ⊡ E_S φ`` and **continual common knowledge** ``C□_S φ`` as the
  greatest fixed point of ``X ↔ E□_S(φ ∧ X)``, plus the fast
  reachability-component algorithm of Corollary 3.3 for run-level facts.

All functions take and return :class:`~repro.model.system.TruthAssignment`
matrices; formula-level caching lives in :mod:`repro.knowledge.formulas`.

Finite-horizon caveat: temporal operators treat the horizon as the end of
time.  For the run-level and monotone facts used throughout the paper this
is exact provided the horizon exceeds all decision times (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List

from .. import obs, trace
from ..model.system import Point, System, TruthAssignment
from .nonrigid import NonrigidSet


def eval_knows(
    system: System, processor: int, phi: TruthAssignment
) -> TruthAssignment:
    """``K_i φ``: truth of φ at every point where ``i`` has the same state.

    Knowledge is state-determined, so the result is computed once per
    distinct local state of *processor* and broadcast to all points sharing
    it.
    """
    result = TruthAssignment.constant(system, False)
    seen: Dict[int, bool] = {}
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            view = run.view(processor, time)
            value = seen.get(view)
            if value is None:
                value = all(
                    phi.at(other_run, other_time)
                    for other_run, other_time in system.same_state_points(view)
                )
                seen[view] = value
            result.values[run_index][time] = value
    return result


def eval_believes(
    system: System,
    nonrigid: NonrigidSet,
    processor: int,
    phi: TruthAssignment,
) -> TruthAssignment:
    """``B_i^S φ = K_i(i ∈ S ⇒ φ)``.

    True at ``(r, m)`` iff φ holds at every same-state point ``(r', m')``
    with ``i ∈ S(r', m')``.  Vacuously true when no such point exists —
    matching the paper's observation that ``B_i^S`` is a *belief*: it does
    not imply φ when ``i ∉ S``.
    """
    members = nonrigid.members_matrix(system)
    result = TruthAssignment.constant(system, False)
    seen: Dict[int, bool] = {}
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            view = run.view(processor, time)
            value = seen.get(view)
            if value is None:
                value = all(
                    phi.at(other_run, other_time)
                    for other_run, other_time in system.same_state_points(view)
                    if processor in members[other_run][other_time]
                )
                seen[view] = value
            result.values[run_index][time] = value
    return result


def eval_everyone(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``E_S φ = ∧_{i ∈ S} B_i^S φ`` (vacuously true when ``S`` is empty)."""
    members = nonrigid.members_matrix(system)
    beliefs = [
        eval_believes(system, nonrigid, processor, phi)
        for processor in range(system.n)
    ]
    result = TruthAssignment.constant(system, True)
    for run_index in range(len(system.runs)):
        for time in range(system.horizon + 1):
            for processor in members[run_index][time]:
                if not beliefs[processor].at(run_index, time):
                    result.values[run_index][time] = False
                    break
    return result


def eval_common(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``C_S φ``: greatest fixed point of ``X ↔ E_S(φ ∧ X)``.

    Iterates downward from the all-true assignment; each iteration strictly
    shrinks the true set until stable, so termination is guaranteed on a
    finite system.
    """
    with trace.span("fixpoint.common") as fixpoint_span:
        iterations = 0
        current = TruthAssignment.constant(system, True)
        while True:
            obs.count("fixpoint_iterations")
            iterations += 1
            candidate = eval_everyone(system, nonrigid, phi.conjoin(current))
            if candidate == current:
                fixpoint_span.set("iterations", iterations)
                return current
            current = candidate


def eval_always(system: System, phi: TruthAssignment) -> TruthAssignment:
    """``□ φ``: φ holds now and at all later times of the run."""
    result = TruthAssignment.constant(system, False)
    for run_index in range(len(system.runs)):
        holds = True
        for time in range(system.horizon, -1, -1):
            holds = holds and phi.at(run_index, time)
            result.values[run_index][time] = holds
        # `holds` intentionally carried across the descending sweep.
    return result


def eval_eventually(system: System, phi: TruthAssignment) -> TruthAssignment:
    """``◇ φ``: φ holds now or at some later time of the run."""
    result = TruthAssignment.constant(system, False)
    for run_index in range(len(system.runs)):
        holds = False
        for time in range(system.horizon, -1, -1):
            holds = holds or phi.at(run_index, time)
            result.values[run_index][time] = holds
    return result


def eval_at_all_times(system: System, phi: TruthAssignment) -> TruthAssignment:
    """The paper's ``⊡ φ``: φ holds at *every* time of the run (past,
    present and future) — a run-level property."""
    result = TruthAssignment.constant(system, False)
    for run_index in range(len(system.runs)):
        holds = all(phi.at(run_index, time) for time in range(system.horizon + 1))
        for time in range(system.horizon + 1):
            result.values[run_index][time] = holds
    return result


def eval_everyone_box(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``E□_S φ = ⊡ E_S φ`` (paper, Section 3.3)."""
    return eval_at_all_times(system, eval_everyone(system, nonrigid, phi))


def eval_continual_common(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """``C□_S φ``: greatest fixed point of ``X ↔ E□_S(φ ∧ X)``.

    This is the reference (semantic-definition) evaluator; for run-level φ
    the component algorithm :func:`eval_continual_common_components` is
    equivalent (Corollary 3.3) and much faster.  Tests cross-check the two.
    """
    with trace.span("fixpoint.continual_common") as fixpoint_span:
        iterations = 0
        current = TruthAssignment.constant(system, True)
        while True:
            obs.count("fixpoint_iterations")
            iterations += 1
            candidate = eval_everyone_box(
                system, nonrigid, phi.conjoin(current)
            )
            if candidate == current:
                fixpoint_span.set("iterations", iterations)
                return current
            current = candidate


def eval_eventual_common(
    system: System, nonrigid: NonrigidSet, phi: TruthAssignment
) -> TruthAssignment:
    """Eventual common knowledge ``C◇_S φ`` ([HM90]; paper, Section 3.2).

    "Eventually everyone will know that eventually everyone will know
    that … φ": the greatest fixed point of ``X ↔ ◇ E_S(φ ∧ X)``.  The
    paper's Section 3.2 uses it to motivate continual common knowledge —
    ``C◇`` is *too weak* a basis for a decision rule on its own (both
    ``C◇∃0`` and ``C◇∃1`` can be known by different processors at once),
    which is exactly what experiment E21 exhibits.

    Satisfies ``◇ C_S φ ⇒ C◇_S φ`` (if φ ever becomes common knowledge it
    is eventual common knowledge) — checked in tests.
    """
    with trace.span("fixpoint.eventual_common") as fixpoint_span:
        iterations = 0
        current = TruthAssignment.constant(system, True)
        while True:
            obs.count("fixpoint_iterations")
            iterations += 1
            candidate = eval_eventually(
                system, eval_everyone(system, nonrigid, phi.conjoin(current))
            )
            if candidate == current:
                fixpoint_span.set("iterations", iterations)
                return current
            current = candidate


class _UnionFind:
    """Minimal union-find over run indices (path halving + union by size)."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.size = [1] * size

    def find(self, item: int) -> int:
        parent = self.parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self.size[root_a] < self.size[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        self.size[root_a] += self.size[root_b]


def run_reachability_components(
    system: System, nonrigid: NonrigidSet
) -> List[int]:
    """S-□-reachability components over runs (Corollary 3.3).

    Two runs are linked when some processor, while a member of ``S``, has
    the same local state at a point of each — exactly the one-step relation
    of the paper's ``S-□-reachability``, which (per Lemma 3.4(g)) depends
    only on the runs, not the times.  Returns, for each run index, a
    component representative; runs with **no** ``S`` occurrence at any point
    get the sentinel ``-1`` (no point is reachable from them, so any
    ``C□_S φ`` holds there vacuously).
    """
    members = nonrigid.members_matrix(system)
    uf = _UnionFind(len(system.runs))
    has_occurrence = [False] * len(system.runs)
    first_run_for_view: Dict[int, int] = {}
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            for processor in members[run_index][time]:
                has_occurrence[run_index] = True
                view = run.view(processor, time)
                anchor = first_run_for_view.get(view)
                if anchor is None:
                    first_run_for_view[view] = run_index
                else:
                    uf.union(anchor, run_index)
    return [
        uf.find(run_index) if has_occurrence[run_index] else -1
        for run_index in range(len(system.runs))
    ]


def eval_continual_common_components(
    system: System,
    nonrigid: NonrigidSet,
    run_level_phi: List[bool],
) -> TruthAssignment:
    """Fast ``C□_S φ`` for run-level φ via reachability components.

    ``C□_S φ`` holds at (every point of) run ``r`` iff φ holds in every run
    of ``r``'s S-□-reachability component; runs without any ``S``
    occurrence satisfy it vacuously.

    Args:
        run_level_phi: ``run_level_phi[run_index]`` — truth of φ in the run
            (φ must be time-independent).
    """
    with obs.stage("reachability_components"), trace.span(
        "reachability_components", runs=len(system.runs)
    ):
        components = run_reachability_components(system, nonrigid)
    component_ok: Dict[int, bool] = {}
    for run_index, component in enumerate(components):
        if component == -1:
            continue
        component_ok[component] = component_ok.get(component, True) and (
            run_level_phi[run_index]
        )
    result = TruthAssignment.constant(system, False)
    for run_index, component in enumerate(components):
        value = True if component == -1 else component_ok[component]
        for time in range(system.horizon + 1):
            result.values[run_index][time] = value
    return result
