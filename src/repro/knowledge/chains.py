"""0-chains and the fact ``∃0*`` (paper, Section 6.2).

A *0-chain* of ``L`` members is a sequence of **distinct** processors
``i_1, ..., i_L`` such that:

* ``i_1`` has initial value 0;
* for each ``k < L``, ``i_{k+1}`` received a message from ``i_k`` in round
  ``k`` and, at time ``k``, ``¬ B^N_{i_{k+1}}(i_k ∉ N)`` holds (``i_{k+1}``
  does not believe ``i_k`` is faulty);
* ``i_L`` is nonfaulty.

Its last receipt happens in round ``L - 1``, so the chain is *complete* from
time ``L - 1`` on.  We define ``∃0*`` to hold at ``(r, m)`` iff some 0-chain
is complete by time ``m`` — a monotone, point-level fact.

**Timing note.**  The paper's Section 6.2 timestamps an ``m``-member chain
at the point ``(r, m)`` — one round *after* its last receipt — while the
proof of Proposition 6.4 lets a processor that receives the chain-bearing
message in round ``m`` decide at time ``m``, which is what yields the
``f + 1`` decision bound (and what the informal description "accepts 0 in
round ``m`` only if transferred by a chain of ``m - 1`` distinct
processors" also suggests).  The two are off by one; we follow the proof:
chains count from their last receipt.  In particular a *nonfaulty processor
with initial value 0* is a complete 1-chain at time 0, so under
``FIP(Z⁰, O⁰)`` value-0 processors decide at time 0 — mirroring ``P0``.

Because chains use distinct processors, no chain has more than ``n``
members, which bounds how late ``∃0*`` can first become true and hence the
decision time of ``FIP(Z⁰, O⁰)`` (Proposition 6.4).

The ``believes-faulty`` subformulas make ``∃0*`` a genuinely
knowledge-laden fact: it cannot be computed from a single run in isolation,
only relative to a system.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..model.system import System, TruthAssignment
from .formulas import Believes, Formula, IsNonfaulty, Not, Predicate
from .nonrigid import NONFAULTY

#: Cache-key tag for the ∃0* predicate (value-0 chains, per the paper).
_EXISTS0STAR_KEY = ("exists-0-star",)


def believes_faulty(observer: int, suspect: int) -> Formula:
    """``B^N_observer(suspect ∉ N)`` — observer believes suspect faulty."""
    return Believes(observer, Not(IsNonfaulty(suspect)), NONFAULTY)


def earliest_chain_time(
    system: System,
    run_index: int,
    suspects: List[List[TruthAssignment]],
) -> Optional[int]:
    """Earliest time at which some 0-chain is complete in a run.

    Returns ``L - 1`` for the shortest valid chain (``L`` members), or
    ``None`` when no chain completes within the horizon.

    *suspects[j][i]* is the evaluated truth of ``B^N_j(i ∉ N)``.
    """
    run = system.runs[run_index]
    n = system.n

    # frontier: chains of length k represented as (last member, member set);
    # a length-k chain's receipts cover rounds 1..k-1.
    frontier: Set[Tuple[int, frozenset]] = {
        (processor, frozenset((processor,)))
        for processor in range(n)
        if run.config.value_of(processor) == 0
    }
    length = 1
    while frontier:
        if any(run.is_nonfaulty(last) for last, _ in frontier):
            return length - 1
        if length >= n or length > system.horizon:
            return None
        next_frontier: Set[Tuple[int, frozenset]] = set()
        receipt_round = length  # link k = length happens in round `length`
        for last, used in frontier:
            for successor in range(n):
                if successor in used:
                    continue
                if last not in run.senders_to(successor, receipt_round):
                    continue
                if suspects[successor][last].at(run_index, receipt_round):
                    continue  # i_{k+1} believes i_k faulty at time k
                next_frontier.add((successor, used | {successor}))
        frontier = next_frontier
        length += 1
    return None


def _compute_exists0star(system: System) -> TruthAssignment:
    suspects: List[List[TruthAssignment]] = [
        [
            believes_faulty(observer, suspect).evaluate(system)
            for suspect in range(system.n)
        ]
        for observer in range(system.n)
    ]
    rows: List[List[bool]] = []
    for run_index in range(len(system.runs)):
        first = earliest_chain_time(system, run_index, suspects)
        row = [False] * (system.horizon + 1)
        if first is not None:
            for time in range(first, system.horizon + 1):
                row[time] = True
        rows.append(row)
    return TruthAssignment.from_rows(system, rows)


def exists_zero_star() -> Formula:
    """The monotone point-level fact ``∃0*``.

    Note: *not* run-level — early times of a run may lack any complete
    chain even when later times have one.
    """
    return Predicate(_EXISTS0STAR_KEY, _compute_exists0star, run_level=False)


def eventually_exists_zero_star() -> Formula:
    """``◇∃0*`` evaluated as ``∃0*`` at the horizon (monotone fact).

    Within a finite-horizon system, "``∃0*`` will ever hold" is exactly
    "``∃0*`` holds at the horizon"; exact whenever ``horizon ≥ n - 1``
    (chains cannot outgrow ``n`` members).  Used by the one-rule ``O⁰`` of
    :mod:`repro.protocols.chain_fip`.
    """
    def compute(system: System) -> TruthAssignment:
        base = _compute_exists0star(system)
        horizon = system.horizon
        return TruthAssignment.from_run_levels(
            system,
            [
                base.at(run_index, horizon)
                for run_index in range(len(system.runs))
            ],
        )

    return Predicate(("eventually",) + _EXISTS0STAR_KEY, compute, run_level=True)
