"""Nonrigid sets of processors (paper, Section 3.1).

A *nonrigid set* ``S`` assigns to every point ``(r, m)`` a subset of the
processors.  The two instances the paper uses everywhere are:

* ``N`` — the nonfaulty processors (time-independent per run under the
  paper's EBA convention), and
* ``N ∧ A`` — nonfaulty processors whose current local state lies in a
  decision set ``A``.

Every nonrigid set exposes a per-point member matrix, memoized on the system
by cache key, plus an O(1) membership test.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, List

from ..core.decision_sets import DecisionPair
from ..model.system import System


class NonrigidSet(ABC):
    """A function from points of a system to processor subsets."""

    @abstractmethod
    def cache_key(self) -> object:
        """Stable key identifying this set for evaluation caching."""

    @abstractmethod
    def _compute_members(self, system: System) -> List[List[FrozenSet[int]]]:
        """Member matrix: ``matrix[run_index][time]``."""

    def members_matrix(self, system: System) -> List[List[FrozenSet[int]]]:
        """The memoized member matrix over *system*."""
        return system.cached_nonrigid(
            self.cache_key(), lambda: self._compute_members(system)
        )

    def members(self, system: System, run_index: int, time: int) -> FrozenSet[int]:
        """``S(r, m)`` for the point ``(run_index, time)``."""
        return self.members_matrix(system)[run_index][time]

    def contains(
        self, system: System, run_index: int, time: int, processor: int
    ) -> bool:
        """Whether *processor* belongs to ``S(r, m)``."""
        return processor in self.members(system, run_index, time)

    def always_empty(self, system: System) -> bool:
        """Whether ``S`` is empty at every point of *system*."""
        matrix = self.members_matrix(system)
        return all(not cell for row in matrix for cell in row)


class Nonfaulty(NonrigidSet):
    """The nonrigid set ``N`` of nonfaulty processors.

    Under the paper's convention for EBA a processor is nonfaulty in a run
    iff it follows the protocol throughout, so membership is constant over
    time within each run.
    """

    def cache_key(self) -> object:
        return ("nonrigid", "N")

    def _compute_members(self, system: System) -> List[List[FrozenSet[int]]]:
        return [
            [run.nonfaulty] * (system.horizon + 1) for run in system.runs
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "N"


class Everyone(NonrigidSet):
    """The constant nonrigid set of all processors (rigid ``G = {1..n}``)."""

    def cache_key(self) -> object:
        return ("nonrigid", "everyone")

    def _compute_members(self, system: System) -> List[List[FrozenSet[int]]]:
        everyone = frozenset(range(system.n))
        return [
            [everyone] * (system.horizon + 1) for _ in system.runs
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ALL"


class ConstantSet(NonrigidSet):
    """A rigid set: the same fixed group ``G`` at every point."""

    def __init__(self, processors: FrozenSet[int]) -> None:
        self.processors = frozenset(processors)

    def cache_key(self) -> object:
        return ("nonrigid", "const", tuple(sorted(self.processors)))

    def _compute_members(self, system: System) -> List[List[FrozenSet[int]]]:
        return [
            [self.processors] * (system.horizon + 1) for _ in system.runs
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"G{sorted(self.processors)}"


class NonfaultyAndDeciding(NonrigidSet):
    """The nonrigid set ``N ∧ A`` for a decision set ``A`` (paper, §4).

    ``(N ∧ A)(r, m) = { i : i ∈ N(r, m) and r_i(m) ∈ A_i }`` where ``A`` is
    either the zero- or the one-set of a :class:`DecisionPair`.
    """

    def __init__(self, pair: DecisionPair, which: str) -> None:
        if which not in ("zeros", "ones"):
            raise ValueError(f"which must be 'zeros' or 'ones', got {which!r}")
        self.pair = pair
        self.which = which
        self._states = pair.zeros if which == "zeros" else pair.ones

    def cache_key(self) -> object:
        return ("nonrigid", "N-and", self.pair.token, self.which)

    def _compute_members(self, system: System) -> List[List[FrozenSet[int]]]:
        # Scatter via the same-state index: each occurring view in ``A``
        # deposits its (nonfaulty) owner at the view's occurrence points —
        # work proportional to occurrences of deciding states, not to
        # points × processors.
        states = self._states
        table = system.table
        width = system.horizon + 1
        empty: FrozenSet[int] = frozenset()
        matrix: List[List[FrozenSet[int]]] = [
            [empty] * width for _ in system.runs
        ]
        runs = system.runs
        for view, points in system._state_index.items():
            if view not in states:
                continue
            owner = table.info(view).processor
            addition = frozenset((owner,))
            for run_index, time in points:
                if owner in runs[run_index].nonfaulty:
                    row = matrix[run_index]
                    row[time] = row[time] | addition
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        symbol = "Z" if self.which == "zeros" else "O"
        return f"(N∧{symbol}[{self.pair.name}])"


#: Shared instance of ``N`` — the common case.
NONFAULTY = Nonfaulty()

#: Shared instance of the all-processors rigid set.
EVERYONE = Everyone()


def nonfaulty_and_zeros(pair: DecisionPair) -> NonrigidSet:
    """``N ∧ Z`` for a decision pair."""
    return NonfaultyAndDeciding(pair, "zeros")


def nonfaulty_and_ones(pair: DecisionPair) -> NonrigidSet:
    """``N ∧ O`` for a decision pair."""
    return NonfaultyAndDeciding(pair, "ones")
