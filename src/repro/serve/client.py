"""Thin blocking client for the knowledge-query daemon.

:class:`ServeClient` speaks the newline-delimited JSON protocol over a
unix socket (or TCP host/port) synchronously — it exists for the CLI
(``repro-eba query``), the tests and the benchmarks, none of which want
an event loop.  One call, one request id, frames matched by echo:

    with ServeClient(".repro_serve.sock") as client:
        result = client.request("eval", catalog={...})
        for event in client.stream("monitor", mode="crash", ...):
            ...  # one dict per observed round

Wire errors surface as :class:`ServeError` carrying the error ``code``
(``queue_full``, ``budget_exceeded``, ...) so callers can branch on the
cause without string matching.  :func:`daemon_available` is the cheap
probe ``repro-eba query`` uses to decide between the daemon and its
in-process fallback.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional

from ..errors import ReproError
from .protocol import decode_frame, encode_frame

__all__ = ["ServeClient", "ServeError", "daemon_available"]


class ServeError(ReproError):
    """The daemon answered with an error frame."""

    def __init__(self, code: str, message: str, error: Dict[str, Any]):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.error = error


class ServeClient:
    """Synchronous NDJSON client; not thread-safe (one socket, one reader).

    Args:
        socket_path: Unix socket to connect to (mutually exclusive with
            *host*/*port*).
        host, port: TCP endpoint when no unix socket is given.
        timeout: Socket timeout in seconds for connect and each reply
            frame; streams reset it per frame, so a slow round does not
            need a round-count-times-longer timeout.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 300.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ReproError("ServeClient needs a socket path or a port")
        if socket_path is not None:
            self._socket = socket.socket(socket.AF_UNIX)
            endpoint = socket_path
        else:
            self._socket = socket.socket(socket.AF_INET)
            endpoint = (host, port)
        self._socket.settimeout(timeout)
        try:
            self._socket.connect(endpoint)
        except OSError as error:
            self._socket.close()
            raise ReproError(
                f"cannot reach daemon at {endpoint!r}: {error}"
            ) from None
        self._reader = self._socket.makefile("rb")
        self._next_id = 0

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    # -- the protocol ------------------------------------------------------

    def _send(self, op: str, params: Dict[str, Any]) -> int:
        self._next_id += 1
        request_id = self._next_id
        frame = {"id": request_id, "op": op, "params": params}
        self._socket.sendall(encode_frame(frame))
        return request_id

    def _read_frame(self, request_id: int) -> Dict[str, Any]:
        while True:
            line = self._reader.readline()
            if not line:
                raise ReproError(
                    "daemon closed the connection mid-request"
                )
            frame = decode_frame(line)
            if frame.get("id") == request_id:
                return frame
            # A frame for a request this client never pipelined would be
            # a daemon bug; skip rather than mis-attribute it.

    @staticmethod
    def _raise_on_error(frame: Dict[str, Any]) -> None:
        if frame.get("ok"):
            return
        error = frame.get("error") or {}
        raise ServeError(
            str(error.get("code", "internal")),
            str(error.get("message", "daemon error")),
            error,
        )

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One non-streaming request; the ``result`` object, or raises."""
        request_id = self._send(op, params)
        frame = self._read_frame(request_id)
        self._raise_on_error(frame)
        if frame.get("stream"):
            raise ReproError(
                f"op {op!r} streams; use ServeClient.stream()"
            )
        return frame["result"]

    def stream(self, op: str, **params: Any) -> Iterator[Dict[str, Any]]:
        """A streaming request: yields each event, then the terminal result.

        Every yielded dict is an ``event`` except the last, which is the
        terminal ``result`` (distinguished by the generator simply
        ending after it).  Wire errors raise :class:`ServeError`, also
        mid-stream.
        """
        request_id = self._send(op, params)
        while True:
            frame = self._read_frame(request_id)
            self._raise_on_error(frame)
            if frame.get("stream"):
                yield frame["event"]
                continue
            yield frame["result"]
            return

    # -- conveniences ------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.request("healthz")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")


def daemon_available(
    socket_path: Optional[str],
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    timeout: float = 1.0,
) -> bool:
    """Whether a live daemon answers ``healthz`` at the endpoint."""
    try:
        with ServeClient(
            socket_path, host=host, port=port, timeout=timeout
        ) as client:
            return bool(client.healthz().get("ok"))
    except ReproError:
        return False
    except OSError:
        return False
