"""Bounded admission queue and per-query budgets for the daemon.

The daemon is sized for sustained load, not bursts: requests that cannot
be queued are **rejected at admission** (the 429 analog — error code
``queue_full`` with the bound that was hit) instead of accumulating
unboundedly and OOMing the process.  :class:`RequestQueue` is the bridge
between the asyncio acceptor (producer, never blocks) and the worker
threads (consumers, block on :meth:`RequestQueue.pop`):

* :meth:`RequestQueue.try_push` admits or rejects in O(1) under a lock
  and keeps the ``serve_queue_depth`` gauge current, so a Prometheus
  scrape shows backpressure as it happens;
* rejections bump ``serve_rejected_<cause>`` counters (causes
  ``queue_full`` and ``shutdown``), the per-cause convention shared with
  ``exec_shard_retries_<cause>``;
* :meth:`RequestQueue.close` drains consumers: blocked ``pop`` calls
  return ``None`` and further pushes are rejected with cause
  ``shutdown`` — the graceful-drain half of SIGTERM handling.

:class:`QueryBudget` carries the per-query limits: ``max_points`` bounds
the system size a query may evaluate over (checked against
``System.num_points()`` once the cell is resolved, before any formula
work) and ``timeout`` bounds wall time — enforced for real on the forked
heavy path, where the supervised pool SIGKILLs a worker that exceeds it.
Budgets resolve from ``REPRO_SERVE_MAX_POINTS`` / ``REPRO_SERVE_TIMEOUT``
when not given explicitly.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from .. import obs
from ..errors import ConfigurationError, ReproError

__all__ = [
    "BudgetExceeded",
    "QueryBudget",
    "RequestQueue",
    "DEFAULT_MAX_POINTS",
    "DEFAULT_TIMEOUT",
    "DEFAULT_MAX_QUEUE",
]

MAX_POINTS_ENV = "REPRO_SERVE_MAX_POINTS"
TIMEOUT_ENV = "REPRO_SERVE_TIMEOUT"
MAX_QUEUE_ENV = "REPRO_SERVE_MAX_QUEUE"

#: Default point-count budget: generous enough for every experiment cell
#: in the suite (E9's heavy cell is ~1.2M points) while still bounding a
#: hostile ``(n, t, horizon)`` request.
DEFAULT_MAX_POINTS = 4_000_000

#: Default per-query wall budget in seconds.
DEFAULT_TIMEOUT = 120.0

#: Default admission-queue bound.
DEFAULT_MAX_QUEUE = 64


class BudgetExceeded(ReproError):
    """A query hit its point-count or wall-time budget."""

    def __init__(self, limit: str, message: str) -> None:
        super().__init__(message)
        self.limit = limit


def _env_positive_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"{name} must be an integer >= 1, got {raw!r}")
    return value


def _env_positive_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number > 0, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(f"{name} must be a number > 0, got {raw!r}")
    return value


@dataclass(frozen=True)
class QueryBudget:
    """Per-query limits the daemon enforces before and during evaluation."""

    max_points: int = DEFAULT_MAX_POINTS
    timeout: float = DEFAULT_TIMEOUT

    @staticmethod
    def resolve(
        max_points: Optional[int] = None, timeout: Optional[float] = None
    ) -> "QueryBudget":
        """Explicit arguments, else the ``REPRO_SERVE_*`` env vars."""
        budget = QueryBudget(
            max_points=(
                max_points
                if max_points is not None
                else _env_positive_int(MAX_POINTS_ENV, DEFAULT_MAX_POINTS)
            ),
            timeout=(
                timeout
                if timeout is not None
                else _env_positive_float(TIMEOUT_ENV, DEFAULT_TIMEOUT)
            ),
        )
        if budget.max_points < 1:
            raise ConfigurationError(
                f"need max_points >= 1, got {budget.max_points}"
            )
        if budget.timeout <= 0:
            raise ConfigurationError(f"need timeout > 0, got {budget.timeout}")
        return budget

    def check_points(self, points: int, descriptor: str) -> None:
        """Reject a system too large for this query's budget."""
        if points > self.max_points:
            raise BudgetExceeded(
                "max_points",
                f"{descriptor} has {points} points, over the "
                f"{self.max_points}-point budget",
            )


class RequestQueue:
    """Bounded FIFO between the acceptor and the worker threads."""

    def __init__(self, max_depth: Optional[int] = None) -> None:
        if max_depth is None:
            max_depth = _env_positive_int(MAX_QUEUE_ENV, DEFAULT_MAX_QUEUE)
        if max_depth < 1:
            raise ConfigurationError(f"need max_depth >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.admitted = 0
        self.rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def try_push(self, item: Any) -> bool:
        """Admit *item*, or reject it (full queue / closed) returning False."""
        with self._not_empty:
            if self._closed:
                self.rejected += 1
                obs.count("serve_rejected_shutdown")
                return False
            if len(self._items) >= self.max_depth:
                self.rejected += 1
                obs.count("serve_rejected_queue_full")
                return False
            self._items.append((time.perf_counter(), item))
            self.admitted += 1
            obs.gauge("serve_queue_depth", len(self._items))
            self._not_empty.notify()
            return True

    def pop(self, timeout: Optional[float] = None):
        """The oldest admitted item, blocking up to *timeout* seconds.

        Returns ``(queued_seconds, item)`` — the time the request waited
        in the queue rides along so the server can report it — or
        ``None`` on timeout or once the queue is closed and drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            enqueued, item = self._items.popleft()
            obs.gauge("serve_queue_depth", len(self._items))
            return (time.perf_counter() - enqueued, item)

    def close(self) -> None:
        """Reject further pushes; wake every blocked consumer.

        Already-admitted items stay poppable — the daemon drains them
        before exiting.
        """
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def snapshot(self) -> dict:
        """Depth/bound/admission tallies for ``stats`` and ``healthz``."""
        with self._lock:
            return {
                "depth": len(self._items),
                "max_depth": self.max_depth,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "closed": self._closed,
            }
