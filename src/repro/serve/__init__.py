"""Knowledge-as-a-service: the long-lived query daemon (`repro-eba serve`).

The paper's characterization turns "can the processes decide yet?" into a
knowledge test, which is exactly the shape of an online query service —
yet a cold ``repro-eba`` invocation pays interpreter start-up, imports,
system build or cache load, kernel selection and index warm-up before
answering a single formula.  This package keeps all of that **resident**:

* :mod:`repro.serve.server` — the asyncio daemon speaking
  newline-delimited JSON over a unix socket (TCP optional), with a
  bounded request queue, per-query budgets and graceful drain-on-signal;
* :mod:`repro.serve.protocol` — the wire schema: request validation,
  error codes, the formula JSON AST, and frame encode/decode;
* :mod:`repro.serve.queue` — the bounded admission queue (429-style
  rejection + ``serve_queue_depth`` gauge) and the
  :class:`~repro.serve.queue.QueryBudget` limits;
* :mod:`repro.serve.session` — the query engine: resolves systems
  through the hot :class:`~repro.model.provider.SystemProvider`, answers
  cached-cell queries inline and routes heavy cells through the
  supervised fork-pool of :mod:`repro.exec` (whose per-shard timeout is
  the wall-time budget);
* :mod:`repro.serve.client` — the thin blocking client behind
  ``repro-eba query``, which falls back to in-process evaluation when no
  daemon is up.

Request types: ``eval`` (formula at a point/cell), ``explain``
(:mod:`repro.knowledge.explain` traces), ``extend`` (grow a resident
cell), ``monitor`` (stream :mod:`repro.sim.monitor` K/E/C□ verdicts per
observed round), ``stats`` and ``healthz`` (live :mod:`repro.obs`
snapshot + Prometheus text).
"""

from .client import ServeClient, ServeError, daemon_available
from .protocol import PROTOCOL_VERSION, build_formula
from .queue import QueryBudget, RequestQueue
from .server import KnowledgeServer, ServeConfig, run_server
from .session import QueryEngine

__all__ = [
    "PROTOCOL_VERSION",
    "KnowledgeServer",
    "QueryBudget",
    "QueryEngine",
    "RequestQueue",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "build_formula",
    "daemon_available",
    "run_server",
]
