"""The knowledge-query daemon: asyncio acceptor, worker threads, drain.

Layout — three layers, each with one job:

* the **acceptor** (asyncio, single-threaded) owns the sockets.  It reads
  newline-delimited JSON frames, validates them against the protocol
  tables, answers ``stats`` / ``healthz`` immediately (they only read
  in-process state), and pushes everything else onto the bounded
  :class:`~repro.serve.queue.RequestQueue`.  A push that fails is a wire
  error in the same breath: ``queue_full`` (the 429 analog, carrying the
  bound) or ``shutting_down``.  The acceptor never blocks on query work.
* the **worker threads** pop admitted requests and run them through one
  shared :class:`~repro.serve.session.QueryEngine` — inline on the hot
  provider for resident cells, through the supervised fork-pool for
  fresh enumerations.  Responses (and streamed ``monitor`` round events)
  are marshalled back onto the event loop with
  ``call_soon_threadsafe``, the only thread-safe way to touch a writer.
* the **drain path**: SIGTERM/SIGINT closes the listeners, closes the
  queue (new pushes rejected, admitted items stay poppable), joins the
  workers once the queue is dry, tears down the engine's fork-pool (no
  orphaned children), flushes the telemetry journal and unlinks the
  socket file.  In-flight queries finish; nothing is dropped.

Every finished request lands in the ``serve_request_seconds`` histogram
and (when a journal is attached) as one schema-validated
``serve_request`` event, with ``code="ok"`` or the wire error code.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import obs
from ..errors import ReproError
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    stream_event,
    validate_request,
)
from .queue import BudgetExceeded, QueryBudget, RequestQueue
from .session import QueryEngine

__all__ = ["ServeConfig", "KnowledgeServer", "run_server", "DEFAULT_SOCKET"]

#: Default unix-socket path (relative to the working directory, next to
#: the disk cache the daemon keeps hot).
DEFAULT_SOCKET = ".repro_serve.sock"

#: Acceptor line limit — a request frame has no business being larger.
MAX_FRAME_BYTES = 1 << 20

#: Ops the acceptor answers on the event loop (pure in-process reads).
_LOOP_OPS = ("stats", "healthz")


@dataclass
class ServeConfig:
    """Everything a daemon instance needs; CLI flags map 1:1 onto this."""

    socket_path: Optional[str] = DEFAULT_SOCKET
    host: str = "127.0.0.1"
    port: Optional[int] = None
    workers: int = 2
    max_queue: Optional[int] = None
    budget: Optional[QueryBudget] = None
    journal_path: Optional[str] = None
    fork_policy: str = "auto"
    #: Admit the ``debug_sleep`` op (tests and benchmarks only).
    debug: bool = False
    #: Extra env knobs already resolved; kept for introspection.
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.socket_path is None and self.port is None:
            raise ReproError("serve needs a unix socket path or a TCP port")
        if self.workers < 1:
            raise ReproError(f"need workers >= 1, got {self.workers}")


class _Pending:
    """One admitted request: frame fields plus where to answer."""

    __slots__ = ("request_id", "op", "params", "writer", "loop", "server")

    def __init__(self, request_id, op, params, writer, loop, server):
        self.request_id = request_id
        self.op = op
        self.params = params
        self.writer = writer
        self.loop = loop
        self.server = server


class KnowledgeServer:
    """The daemon.  ``await start()``, then ``await wait_closed()``."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.budget = (
            config.budget if config.budget is not None else QueryBudget.resolve()
        )
        self.engine = QueryEngine(
            budget=self.budget, fork_policy=config.fork_policy
        )
        self.queue = RequestQueue(config.max_queue)
        self.journal = None
        if config.journal_path:
            from ..obs.journal import TelemetryJournal

            self.journal = TelemetryJournal(
                config.journal_path, batch="serve", experiment="serve"
            )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._threads: List[threading.Thread] = []
        self._started_monotonic = 0.0
        self._shutting_down = False
        self._closed = asyncio.Event()
        self._requests_done = 0
        self._requests_failed = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the sockets, start the worker threads, install handlers."""
        self._loop = asyncio.get_running_loop()
        self._started_monotonic = time.monotonic()
        if self.config.socket_path:
            self._prepare_socket_path(self.config.socket_path)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection,
                    path=self.config.socket_path,
                    limit=MAX_FRAME_BYTES,
                )
            )
        if self.config.port is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host,
                    port=self.config.port,
                    limit=MAX_FRAME_BYTES,
                )
            )
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, lambda s=signum: self.request_shutdown(f"signal {s}")
                )
            except (NotImplementedError, RuntimeError):
                # Non-main thread or exotic loop: tests drive shutdown
                # directly through request_shutdown().
                pass

    @staticmethod
    def _prepare_socket_path(path: str) -> None:
        """Unlink a stale socket file left by a crashed daemon.

        A *live* daemon's socket accepts connections; refuse to steal it.
        """
        if not os.path.exists(path):
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            return
        import socket as socket_module

        probe = socket_module.socket(socket_module.AF_UNIX)
        probe.settimeout(0.25)
        try:
            probe.connect(path)
        except OSError:
            os.unlink(path)  # stale: nobody home
        else:
            raise ReproError(
                f"socket {path!r} already has a live daemon; "
                f"stop it or pick another --socket"
            )
        finally:
            probe.close()

    def request_shutdown(self, why: str = "") -> None:
        """Begin the graceful drain; idempotent, callable from any thread."""
        if self._shutting_down:
            return
        self._shutting_down = True
        obs.count("serve_shutdowns")
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(
                lambda: loop.create_task(self._drain(why))
            )

    async def _drain(self, why: str) -> None:
        for server in self._servers:
            server.close()
        # Reject new pushes; wake workers so they can drain what is left.
        self.queue.close()
        await asyncio.gather(
            *(server.wait_closed() for server in self._servers),
            return_exceptions=True,
        )
        # Workers exit once pop() returns None (queue closed and dry).
        while any(thread.is_alive() for thread in self._threads):
            await asyncio.sleep(0.05)
        self.engine.close()
        if self.journal is not None:
            self.journal.emit(
                "health", snapshot={"why": why, "queue": self.queue.snapshot()}
            )
            self.journal.close()
        path = self.config.socket_path
        if path and os.path.exists(path):
            try:
                os.unlink(path)
            except OSError:
                pass
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # -- the acceptor ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        obs.count("serve_connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionResetError):
                    # Over-long frame or mid-line reset: unrecoverable
                    # framing, drop the connection.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_frame(line, writer)
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_frame(self, line: bytes, writer) -> None:
        try:
            frame = decode_frame(line)
        except ProtocolError as error:
            self._write(writer, error_response(None, "bad_frame", str(error)))
            self._finish(None, "?", 0.0, "bad_frame")
            return
        request_id = frame.get("id")
        problems = validate_request(frame)
        if problems:
            self._write(
                writer,
                error_response(
                    request_id, "bad_request", "; ".join(problems)
                ),
            )
            self._finish(None, str(frame.get("op")), 0.0, "bad_request")
            return
        op = frame["op"]
        params = frame.get("params", {})
        if op == "debug_sleep" and not self.config.debug:
            self._write(
                writer,
                error_response(
                    request_id, "bad_request",
                    "debug_sleep is only admitted with --debug",
                ),
            )
            return
        if op in _LOOP_OPS:
            started = time.perf_counter()
            result = (
                self._stats_result() if op == "stats" else self._healthz_result()
            )
            self._write(writer, ok_response(request_id, result))
            self._finish(None, op, time.perf_counter() - started, "ok")
            return
        pending = _Pending(
            request_id, op, params, writer, asyncio.get_running_loop(), self
        )
        if not self.queue.try_push(pending):
            if self._shutting_down or self.queue.closed:
                self._write(
                    writer,
                    error_response(
                        request_id, "shutting_down",
                        "daemon is draining; retry against a fresh daemon",
                    ),
                )
                self._finish(None, op, 0.0, "shutting_down")
            else:
                self._write(
                    writer,
                    error_response(
                        request_id, "queue_full",
                        f"request queue is at its bound "
                        f"({self.queue.max_depth}); retry with backoff",
                        max_depth=self.queue.max_depth,
                    ),
                )
                self._finish(None, op, 0.0, "queue_full")

    # -- the workers -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            popped = self.queue.pop(timeout=0.5)
            if popped is None:
                if self.queue.closed:
                    return
                continue
            queued_seconds, pending = popped
            obs.observe("serve_queue_wait_seconds", queued_seconds)
            self._execute(pending)

    def _execute(self, pending: _Pending) -> None:
        started = time.perf_counter()

        def emit(event: Dict[str, Any]) -> None:
            self._write_threadsafe(
                pending, stream_event(pending.request_id, event)
            )

        code = "ok"
        try:
            result = self.engine.execute(
                pending.op, pending.params, emit=emit
            )
            done = True if pending.op == "monitor" else None
            frame = ok_response(pending.request_id, result, done=done)
        except BudgetExceeded as error:
            code = "budget_exceeded"
            frame = error_response(
                pending.request_id, code, str(error), limit=error.limit
            )
        except ProtocolError as error:
            code = "bad_request"
            frame = error_response(pending.request_id, code, str(error))
        except KeyError as error:
            code = "not_found"
            message = error.args[0] if error.args else str(error)
            frame = error_response(pending.request_id, code, str(message))
        except ReproError as error:
            code = "internal"
            frame = error_response(pending.request_id, code, str(error))
        except Exception as error:  # noqa: BLE001 — daemon must survive
            code = "internal"
            frame = error_response(
                pending.request_id, code,
                f"{type(error).__name__}: {error}",
            )
        self._write_threadsafe(pending, frame)
        self._finish(pending, pending.op, time.perf_counter() - started, code)

    # -- plumbing ----------------------------------------------------------

    def _write(self, writer, frame: Dict[str, Any]) -> None:
        """Send one frame from the event-loop thread; drops on dead peers."""
        try:
            if writer.is_closing():
                return
            writer.write(encode_frame(frame))
        except Exception:
            # A client killed mid-query must not take the daemon down.
            obs.count("serve_dead_client_writes")

    def _write_threadsafe(self, pending: _Pending, frame) -> None:
        pending.loop.call_soon_threadsafe(self._write, pending.writer, frame)

    def _finish(self, pending, op: str, seconds: float, code: str) -> None:
        ok = code == "ok"
        if ok:
            self._requests_done += 1
        else:
            self._requests_failed += 1
        obs.observe("serve_request_seconds", seconds)
        if self.journal is not None:
            self.journal.emit(
                "serve_request", op=op, seconds=seconds, ok=ok, code=code
            )

    # -- loop-answered ops -------------------------------------------------

    def _stats_result(self) -> Dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "queue": self.queue.snapshot(),
            "requests_done": self._requests_done,
            "requests_failed": self._requests_failed,
            "budget": {
                "max_points": self.budget.max_points,
                "timeout": self.budget.timeout,
            },
            "cache": _json_safe(self.engine.provider.cache_info()),
            "obs": obs.snapshot(),
        }

    def _healthz_result(self) -> Dict[str, Any]:
        from ..obs.metrics import prometheus_text

        return {
            "ok": not self._shutting_down,
            "queue_depth": len(self.queue),
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "prometheus": prometheus_text(obs.snapshot()),
        }


def _json_safe(value: Any) -> Any:
    """Deep-copy *value* with non-JSON scalars (tuple keys) stringified."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def run_server(config: ServeConfig) -> int:
    """Run a daemon until SIGTERM/SIGINT; the blocking CLI entry point."""

    async def main() -> None:
        server = KnowledgeServer(config)
        await server.start()
        where = []
        if config.socket_path:
            where.append(f"unix:{config.socket_path}")
        if config.port is not None:
            where.append(f"tcp:{config.host}:{config.port}")
        print(
            f"repro-eba serve: listening on {', '.join(where)} "
            f"({config.workers} worker(s), queue bound "
            f"{server.queue.max_depth}, budget "
            f"{server.budget.max_points} points / "
            f"{server.budget.timeout:g}s)",
            flush=True,
        )
        await server.wait_closed()
        print("repro-eba serve: drained and stopped", flush=True)

    asyncio.run(main())
    return 0
