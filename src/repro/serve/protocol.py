"""Wire protocol for the knowledge-query daemon.

Frames are **newline-delimited JSON**: one UTF-8 encoded JSON object per
line, in both directions.  A request carries::

    {"id": 7, "op": "eval", "params": {...}}

and is answered by exactly one terminal response —

* ``{"id": 7, "ok": true, "result": {...}}`` on success, or
* ``{"id": 7, "ok": false, "error": {"code": ..., "message": ...}}``;

streaming ops (``monitor``) interleave ``{"id": 7, "ok": true,
"stream": true, "event": {...}}`` frames before the terminal response,
which carries ``"done": true``.  Clients match frames to requests by
``id`` (any JSON scalar; the server echoes it verbatim), so one
connection may pipeline requests.

Validation mirrors :mod:`repro.obs.journal`: each op has a fixed table of
required and optional parameter types (:data:`REQUEST_OPS`), extra fields
are rejected loudly rather than silently dropped, and
:func:`validate_request` returns the full problem list so a client sees
every mistake at once.  Error codes are enumerated in :data:`ERROR_CODES`
— ``queue_full`` is the 429 analog (the response carries the queue bound
that was hit), ``budget_exceeded`` names the exhausted limit.

Formulas travel as a small JSON AST (:func:`build_formula`), e.g.::

    {"kind": "knows", "processor": 0, "of": {"kind": "exists", "value": 1}}

with group operators (``everyone`` / ``common`` / ``continual_common`` /
``eventual_common``) fixed to the nonfaulty set — or by naming an entry
of the CLI explain catalog (``"catalog": {"experiment": "E4", "formula":
"common-exists1"}``), which is how the parity suite pins served verdicts
against in-process evaluation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "ERROR_CODES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "validate_request",
    "build_formula",
    "ok_response",
    "error_response",
    "stream_event",
]

#: Bump when frame shape or required parameters change meaning.
PROTOCOL_VERSION = 1

_NUMBER = (int, float)
_STR = (str,)
_INT = (int,)
_DICT = (dict,)
_LIST = (list,)
_BOOL = (bool,)

#: ``op -> (required params, optional params)`` with journal-style type
#: tuples (``None`` means "any JSON value").  Unknown params are errors.
REQUEST_OPS: Dict[str, tuple] = {
    "eval": (
        {},
        {
            "mode": _STR,
            "n": _INT,
            "t": _INT,
            "horizon": _INT,
            "formula": _DICT,
            "catalog": _DICT,
            "point": _LIST,
            "kernel": _STR,
        },
    ),
    "explain": (
        {"catalog": _DICT},
        {"n": _INT, "t": _INT, "point": _LIST},
    ),
    "extend": (
        {"mode": _STR, "n": _INT, "t": _INT, "horizon": _INT},
        {},
    ),
    "monitor": (
        {"mode": _STR, "n": _INT, "t": _INT, "config": _STR, "rounds": _INT},
        {"crash": _LIST, "omit": _LIST, "recv_omit": _LIST, "value": _INT},
    ),
    "stats": ({}, {}),
    "healthz": ({}, {}),
    # Test/bench-only op, admitted when the server runs with debug=True:
    # holds a worker for `seconds`, which makes queue backpressure and
    # drain behaviour deterministic to exercise.
    "debug_sleep": ({"seconds": _NUMBER}, {}),
}

#: Every error code a response may carry.
ERROR_CODES = (
    "bad_frame",        # not valid JSON, or not an object
    "bad_request",      # schema-invalid request (details in message)
    "unknown_op",
    "queue_full",       # 429 analog: bounded queue rejected admission
    "budget_exceeded",  # point-count or wall-time budget hit
    "shutting_down",    # daemon is draining; no new work admitted
    "not_found",        # unknown catalog entry / scenario / point
    "internal",         # evaluation raised; message carries the cause
)


class ProtocolError(ReproError):
    """A frame violated the wire protocol."""


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One frame: canonical JSON plus the line terminator."""
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line; anything but a JSON object raises."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def validate_request(obj: Dict[str, Any]) -> List[str]:
    """Problems with one request frame (empty list = valid)."""
    problems: List[str] = []
    if "id" not in obj:
        problems.append("missing required field 'id'")
    elif isinstance(obj.get("id"), (dict, list)):
        problems.append("'id' must be a JSON scalar")
    op = obj.get("op")
    if not isinstance(op, str):
        problems.append("missing or non-string 'op'")
        return problems
    spec = REQUEST_OPS.get(op)
    if spec is None:
        problems.append(
            f"unknown op {op!r}; known ops: {', '.join(sorted(REQUEST_OPS))}"
        )
        return problems
    required, optional = spec
    params = obj.get("params", {})
    if not isinstance(params, dict):
        problems.append("'params' must be an object")
        return problems
    for field, types in required.items():
        if field not in params:
            problems.append(f"{op}: missing required param {field!r}")
        elif types is not None and not isinstance(params[field], types):
            problems.append(
                f"{op}: param {field!r} has type "
                f"{type(params[field]).__name__}"
            )
    for field, value in params.items():
        if field in required:
            continue
        if field not in optional:
            problems.append(f"{op}: unknown param {field!r}")
        else:
            types = optional[field]
            if types is not None and not isinstance(value, types):
                problems.append(
                    f"{op}: param {field!r} has type {type(value).__name__}"
                )
    extra = set(obj) - {"id", "op", "params", "v"}
    for field in sorted(extra):
        problems.append(f"unknown frame field {field!r}")
    return problems


# -- responses ----------------------------------------------------------------


def ok_response(
    request_id: Any, result: Dict[str, Any], *, done: Optional[bool] = None
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if done is not None:
        frame["done"] = done
    return frame


def error_response(
    request_id: Any, code: str, message: str, **extra: Any
) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return {"id": request_id, "ok": False, "error": error}


def stream_event(request_id: Any, event: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "stream": True, "event": event}


# -- the formula AST ----------------------------------------------------------

#: ``kind -> (required keys, has "of" operand, has "operands" list)``
_FORMULA_KINDS = {
    "true": (),
    "false": (),
    "exists": ("value",),
    "all_started": ("value",),
    "is_nonfaulty": ("processor",),
    "initial_value_is": ("processor", "value"),
    "not": ("of",),
    "and": ("operands",),
    "or": ("operands",),
    "implies": ("antecedent", "consequent"),
    "knows": ("processor", "of"),
    "everyone": ("of",),
    "common": ("of",),
    "continual_common": ("of",),
    "eventual_common": ("of",),
    "always": ("of",),
    "eventually": ("of",),
}


def build_formula(spec: Any):
    """Build a :class:`~repro.knowledge.formulas.Formula` from its JSON AST.

    Group operators use the nonfaulty set; richer nonrigid sets (decision
    pairs, protocol-derived sets) are reachable through the explain
    catalog instead, which ties them to an experiment's construction.
    """
    from ..knowledge import formulas as F
    from ..knowledge.nonrigid import NONFAULTY

    if not isinstance(spec, dict):
        raise ProtocolError(
            f"formula spec must be an object, got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    if kind not in _FORMULA_KINDS:
        raise ProtocolError(
            f"unknown formula kind {kind!r}; known kinds: "
            f"{', '.join(sorted(_FORMULA_KINDS))}"
        )
    required = _FORMULA_KINDS[kind]
    for key in required:
        if key not in spec:
            raise ProtocolError(f"formula kind {kind!r} needs {key!r}")
    extra = set(spec) - {"kind"} - set(required)
    if extra:
        raise ProtocolError(
            f"formula kind {kind!r} has unknown keys: {sorted(extra)}"
        )

    def integer(key: str) -> int:
        value = spec[key]
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(
                f"formula kind {kind!r}: {key!r} must be an integer"
            )
        return value

    if kind == "true":
        return F.TrueFormula()
    if kind == "false":
        return F.FalseFormula()
    if kind == "exists":
        return F.Exists(integer("value"))
    if kind == "all_started":
        return F.AllStarted(integer("value"))
    if kind == "is_nonfaulty":
        return F.IsNonfaulty(integer("processor"))
    if kind == "initial_value_is":
        return F.InitialValueIs(integer("processor"), integer("value"))
    if kind == "not":
        return F.Not(build_formula(spec["of"]))
    if kind in ("and", "or"):
        operands = spec["operands"]
        if not isinstance(operands, list) or not operands:
            raise ProtocolError(
                f"formula kind {kind!r}: 'operands' must be a non-empty list"
            )
        built = [build_formula(operand) for operand in operands]
        return F.And(built) if kind == "and" else F.Or(built)
    if kind == "implies":
        return F.Implies(
            build_formula(spec["antecedent"]),
            build_formula(spec["consequent"]),
        )
    if kind == "knows":
        return F.Knows(integer("processor"), build_formula(spec["of"]))
    operand = build_formula(spec["of"])
    if kind == "everyone":
        return F.Everyone(NONFAULTY, operand)
    if kind == "common":
        return F.Common(NONFAULTY, operand)
    if kind == "continual_common":
        return F.ContinualCommon(NONFAULTY, operand)
    if kind == "eventual_common":
        return F.EventualCommon(NONFAULTY, operand)
    if kind == "always":
        return F.Always(operand)
    return F.Eventually(operand)
