"""The daemon's query engine: resident systems, budgets, inline-vs-fork.

:class:`QueryEngine` is the layer between the wire protocol and the
knowledge machinery.  It is deliberately asyncio-free — the server calls
it from worker threads, tests call it directly, and ``repro-eba query``
falls back to it in-process when no daemon is up — so served and
in-process answers are *the same code path*, which is what makes the
verdict-parity suite meaningful.

Execution placement:

* **inline** — the cell is already resident (provider memory LRU, or a
  current-version disk file that loads in milliseconds).  The query runs
  on the calling worker thread against the hot
  :class:`~repro.model.provider.SystemProvider`; this is the path that
  must beat a cold CLI invocation by ≥10x.
* **fork** — the cell would need a fresh (doubly-exponential)
  enumeration.  The query is executed through the supervised fork-pool
  of :mod:`repro.exec` (one ``serve.query`` shard, zero retries), whose
  per-shard timeout *is* the wall-time budget: a build that exceeds it
  is SIGKILLed and the client gets ``budget_exceeded`` instead of the
  daemon stalling.  The forked child inherits the provider's LRU
  copy-on-write and writes the finished cell to the shared disk cache,
  so the *next* query for that cell is inline.

The point-count budget is checked as soon as the system is resolved —
before any formula work — against ``System.num_points()``; formula
evaluation then routes through ``System.effective_kernel()`` exactly as
in-process evaluation does, so kernel selection (and its observability)
is identical on both paths.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Callable, Dict, List, Optional

from .. import obs
from ..errors import ReproError, ShardExecutionError
from ..model.failures import FailureMode
from ..model.provider import SystemProvider, get_provider
from .protocol import ProtocolError, build_formula
from .queue import BudgetExceeded, QueryBudget

__all__ = ["QueryEngine", "verdict_digest"]

#: Ops the engine executes (stats/healthz are assembled by the server).
ENGINE_OPS = ("eval", "explain", "extend", "monitor", "debug_sleep")


def verdict_digest(truth) -> str:
    """Canonical SHA-256 of a truth assignment's full point-by-point rows.

    The parity suite compares this digest between served and in-process
    evaluation — byte-identical rows, not just matching validity bits.
    """
    blob = json.dumps(truth.to_rows(), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _failure_mode(name: Any) -> FailureMode:
    try:
        return FailureMode(name)
    except ValueError:
        known = ", ".join(mode.value for mode in FailureMode)
        raise ProtocolError(
            f"unknown failure mode {name!r}; known modes: {known}"
        ) from None


def _point(params: Dict[str, Any]) -> Optional[tuple]:
    raw = params.get("point")
    if raw is None:
        return None
    if (
        not isinstance(raw, list)
        or len(raw) != 2
        or not all(isinstance(c, int) and not isinstance(c, bool) for c in raw)
    ):
        raise ProtocolError(
            f"'point' must be [run, time], got {raw!r}"
        )
    return (raw[0], raw[1])


def _catalog_entry(spec: Dict[str, Any]):
    from ..knowledge.explain import EXPLAIN_CATALOG

    experiment = spec.get("experiment")
    key = spec.get("formula")
    entries = EXPLAIN_CATALOG.get(experiment)
    if entries is None:
        raise KeyError(
            f"no explainable formulas for experiment {experiment!r}; "
            f"available: {', '.join(EXPLAIN_CATALOG)}"
        )
    entry = entries.get(key)
    if entry is None:
        raise KeyError(
            f"unknown formula {key!r} for {experiment}; "
            f"available: {', '.join(entries)}"
        )
    return entry


def _resolve_eval_request(params: Dict[str, Any]):
    """``(mode, n, t, horizon, formula_builder, description)`` for eval.

    Either a ``catalog`` reference (mode/n/t default from the entry) or an
    explicit ``mode/n/t/horizon`` cell with a ``formula`` AST.
    """
    catalog = params.get("catalog")
    if catalog is not None:
        entry = _catalog_entry(catalog)
        n = params.get("n", 3)
        t = params.get("t", 1)
        mode = _failure_mode(params.get("mode", entry.mode))
        horizon = params.get("horizon", t + 2)
        return (
            mode, n, t, horizon, entry.build,
            f"{catalog.get('experiment')}/{catalog.get('formula')}",
        )
    spec = params.get("formula")
    if spec is None:
        raise ProtocolError("eval needs either 'formula' or 'catalog'")
    formula = build_formula(spec)
    mode = _failure_mode(params.get("mode", "crash"))
    n = params.get("n", 3)
    t = params.get("t", 1)
    horizon = params.get("horizon", t + 2)
    return (mode, n, t, horizon, lambda _system: formula, repr(formula))


def _execute_eval(
    provider: SystemProvider,
    budget: QueryBudget,
    params: Dict[str, Any],
) -> Dict[str, Any]:
    """The eval body shared verbatim by the inline and forked paths."""
    from ..knowledge.planner import evaluate_formulas, planner_active
    from ..model.kernels import use_kernel

    mode, n, t, horizon, build, description = _resolve_eval_request(params)
    started = time.perf_counter()
    system = provider.get(mode, n, t, horizon)
    budget.check_points(system.num_points(), system.describe())
    kernel = params.get("kernel")
    with use_kernel(kernel) if kernel else _null_context():
        formula = build(system)
        if planner_active():
            # Same REPRO_EVAL_PLANNER activation as `repro-eba run`:
            # daemon-inline, forked, and the CLI's --local fallback all
            # pass through here, so all three answer with the same plan
            # (including the limb-block component seeding for run-level
            # C□ portfolios).
            truth = evaluate_formulas(system, [formula])[0]
        else:
            truth = formula.evaluate(system)
        selected = system.effective_kernel()
    point = _point(params)
    result: Dict[str, Any] = {
        "system": {
            "mode": mode.value,
            "n": n,
            "t": t,
            "horizon": horizon,
            "runs": len(system.runs),
            "points": system.num_points(),
        },
        "formula": description,
        "kernel": selected,
        "count_true": truth.count_true(),
        "valid": bool(truth.is_valid()),
        "digest": verdict_digest(truth),
        "seconds": round(time.perf_counter() - started, 6),
    }
    if point is not None:
        run_index, when = point
        if not (
            0 <= run_index < len(system.runs) and 0 <= when <= system.horizon
        ):
            raise KeyError(
                f"point {point} outside system "
                f"({len(system.runs)} runs, horizon {system.horizon})"
            )
        result["point"] = list(point)
        result["holds"] = bool(truth.at(run_index, when))
    return result


def _execute_explain(
    provider: SystemProvider,
    budget: QueryBudget,
    params: Dict[str, Any],
) -> Dict[str, Any]:
    from ..knowledge.explain import (
        catalog_system,
        default_point,
        explain,
        render_explanation,
    )

    entry = _catalog_entry(params["catalog"])
    started = time.perf_counter()
    system = catalog_system(entry, params.get("n", 3), params.get("t", 1))
    budget.check_points(system.num_points(), system.describe())
    formula = entry.build(system)
    point = _point(params)
    if point is None:
        point = default_point(system, formula)
    explanation = explain(system, formula, point)
    problems = explanation.check(system)
    return {
        "explanation": explanation.to_dict(),
        "rendered": render_explanation(explanation),
        "check_ok": not problems,
        "problems": problems,
        "seconds": round(time.perf_counter() - started, 6),
    }


def _execute_extend(
    provider: SystemProvider,
    budget: QueryBudget,
    params: Dict[str, Any],
) -> Dict[str, Any]:
    mode = _failure_mode(params["mode"])
    started = time.perf_counter()
    system = provider.extend(
        mode, params["n"], params["t"], params["horizon"]
    )
    budget.check_points(system.num_points(), system.describe())
    return {
        "system": {
            "mode": mode.value,
            "n": params["n"],
            "t": params["t"],
            "horizon": system.horizon,
            "runs": len(system.runs),
            "points": system.num_points(),
        },
        "seconds": round(time.perf_counter() - started, 6),
    }


def _null_context():
    from contextlib import nullcontext

    return nullcontext()


# -- the forked heavy path -----------------------------------------------------

from ..exec.shard import Shard, register_task  # noqa: E402


@register_task("serve.query")
def _task_serve_query(params: Dict[str, Any]) -> Dict[str, Any]:
    """One served query executed inside a supervised fork.

    The child inherited the parent provider's LRU copy-on-write and
    shares its disk cache, so a cold build done here is persisted for
    the parent's next (then inline) query on the same cell.
    """
    budget = QueryBudget(
        max_points=int(params["budget"]["max_points"]),
        timeout=float(params["budget"]["timeout"]),
    )
    provider = get_provider()
    op = params["op"]
    body = params["params"]
    try:
        if op == "eval":
            result = _execute_eval(provider, budget, body)
        elif op == "extend":
            result = _execute_extend(provider, budget, body)
        else:
            result = _execute_explain(provider, budget, body)
        return {"ok": True, "result": result}
    except BudgetExceeded as error:
        return {
            "ok": False,
            "code": "budget_exceeded",
            "limit": error.limit,
            "message": str(error),
        }
    except KeyError as error:
        return {"ok": False, "code": "not_found", "message": str(error)}


class QueryEngine:
    """Executes validated requests against resident state.

    Args:
        provider: The system provider to keep hot (defaults to the
            process-wide one, which the fork-pool children inherit).
        budget: Per-query limits; defaults resolve from the environment.
        fork_policy: ``"auto"`` forks exactly the queries whose cell is
            not resident; ``"never"`` / ``"always"`` pin the placement
            (tests and benchmarks use the pins).
    """

    def __init__(
        self,
        *,
        provider: Optional[SystemProvider] = None,
        budget: Optional[QueryBudget] = None,
        fork_policy: str = "auto",
    ) -> None:
        if fork_policy not in ("auto", "never", "always"):
            raise ProtocolError(
                f"fork_policy must be auto/never/always, got {fork_policy!r}"
            )
        self.provider = provider if provider is not None else get_provider()
        self.budget = budget if budget is not None else QueryBudget.resolve()
        self.fork_policy = fork_policy
        self._pool = None
        self._fork_serial = 0

    # -- placement ---------------------------------------------------------

    def cell_resident(self, mode: FailureMode, n: int, t: int, horizon: int) -> bool:
        """Whether a query on this cell can run without a fresh build."""
        return self.provider.has_memory_cell(
            mode, n, t, horizon
        ) or self.provider.has_current_cell(mode, n, t, horizon)

    def _placement(self, op: str, params: Dict[str, Any]) -> str:
        if op in ("monitor", "debug_sleep"):
            return "inline"
        if self.fork_policy != "auto":
            return "inline" if self.fork_policy == "never" else "fork"
        try:
            if op == "eval":
                mode, n, t, horizon, _, _ = _resolve_eval_request(params)
            elif op == "extend":
                mode = _failure_mode(params["mode"])
                n, t, horizon = params["n"], params["t"], params["horizon"]
                # Extending from any shallower resident base is cheap.
                if any(
                    self.cell_resident(mode, n, t, h)
                    for h in range(horizon - 1, 0, -1)
                ):
                    return "inline"
            else:  # explain
                entry = _catalog_entry(params["catalog"])
                mode = _failure_mode(entry.mode)
                n, t = params.get("n", 3), params.get("t", 1)
                horizon = t + 2
        except (ProtocolError, KeyError):
            # Let the inline path raise the precise error.
            return "inline"
        return "inline" if self.cell_resident(mode, n, t, horizon) else "fork"

    def _fork_pool(self):
        from ..exec.pool import ShardPool

        if self._pool is None:
            self._pool = ShardPool(
                workers=1,
                timeout=self.budget.timeout,
                retries=0,
                backoff=0.01,
            )
        return self._pool

    def _run_forked(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        self._fork_serial += 1
        shard = Shard(
            shard_id=f"serve-{op}-{self._fork_serial}",
            task="serve.query",
            params={
                "op": op,
                "params": params,
                "budget": {
                    "max_points": self.budget.max_points,
                    "timeout": self.budget.timeout,
                },
            },
        )
        try:
            payloads = self._fork_pool().run([shard])
        except ShardExecutionError as error:
            obs.count("serve_fork_failures")
            if "timeout" in str(error):
                raise BudgetExceeded(
                    "timeout",
                    f"query exceeded the {self.budget.timeout:g}s wall "
                    f"budget and was killed",
                ) from None
            raise
        payload = payloads[shard.shard_id]
        if payload.get("ok"):
            return payload["result"]
        if payload.get("code") == "budget_exceeded":
            raise BudgetExceeded(payload.get("limit", "?"), payload["message"])
        raise KeyError(payload.get("message", "query failed in worker"))

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        op: str,
        params: Dict[str, Any],
        *,
        emit: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Run one validated request; returns the JSON-ready result.

        Raises :class:`BudgetExceeded`, :class:`KeyError` (unknown
        catalog entries / scenarios / points → ``not_found``),
        :class:`~repro.serve.protocol.ProtocolError` (→ ``bad_request``)
        or :class:`~repro.errors.ReproError` (→ ``internal``) — the
        server maps each onto its wire error code.  *emit* receives one
        event dict per streamed ``monitor`` round.
        """
        if op not in ENGINE_OPS:
            raise ProtocolError(f"engine cannot execute op {op!r}")
        placement = self._placement(op, params)
        obs.count(f"serve_requests_{op}")
        obs.count(f"serve_placement_{placement}")
        with obs.stage("serve_execute"):
            if op == "debug_sleep":
                time.sleep(float(params["seconds"]))
                return {"slept": float(params["seconds"])}
            if op == "monitor":
                return self._run_monitor(params, emit)
            if placement == "fork":
                result = self._run_forked(op, params)
            elif op == "eval":
                result = _execute_eval(self.provider, self.budget, params)
            elif op == "extend":
                result = _execute_extend(self.provider, self.budget, params)
            else:
                result = _execute_explain(self.provider, self.budget, params)
        result["placement"] = placement
        return result

    def _run_monitor(
        self,
        params: Dict[str, Any],
        emit: Optional[Callable[[Dict[str, Any]], None]],
    ) -> Dict[str, Any]:
        """Stream one scenario's online K/E/C□ verdicts round by round.

        This is the ROADMAP item-5 leftover closed: the streaming monitor
        wired in as the service's streaming API.  Each round's record
        goes out through *emit* as soon as it is computed; the terminal
        result summarizes the session.
        """
        from ..model.config import InitialConfiguration
        from ..sim.monitor import StreamingMonitor

        rounds = params["rounds"]
        if not isinstance(rounds, int) or rounds < 1:
            raise ProtocolError(f"monitor needs rounds >= 1, got {rounds!r}")
        mode = _failure_mode(params["mode"])
        config = InitialConfiguration(
            [int(bit) for bit in params["config"]]
        )
        pattern = _parse_pattern_specs(params)
        monitor = StreamingMonitor(
            mode,
            params["n"],
            params["t"],
            config,
            pattern,
            value=params.get("value", 1),
            provider=self.provider,
            on_round=emit,
        )
        started = time.perf_counter()
        for _ in range(rounds):
            record = monitor.advance()
            # The ambient cell grows each round; a session that outgrows
            # the point budget stops with the rounds served so far
            # reported in the error, rather than extending unboundedly.
            grown = self.provider.get(
                mode, params["n"], params["t"], record["round"]
            )
            self.budget.check_points(
                grown.num_points(),
                f"monitor horizon {record['round']}",
            )
        return {
            "rounds": monitor.round,
            "horizon": monitor.round,
            "verdicts": monitor.history[-1]["verdicts"],
            "seconds": round(time.perf_counter() - started, 6),
        }

    def close(self) -> None:
        """Tear down the fork-pool (no orphaned workers after shutdown)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None


def _parse_pattern_specs(params: Dict[str, Any]):
    """Build a failure pattern from the CLI mini-language spec lists."""
    from ..cli import _build_pattern, _parse_recv_omit_specs
    from ..model.failures import FailurePattern

    crash = [str(s) for s in params.get("crash", [])]
    omit = [str(s) for s in params.get("omit", [])]
    pattern = _build_pattern(crash, omit)
    recv = [str(s) for s in params.get("recv_omit", [])]
    if recv:
        behaviors = dict(pattern.behaviors)
        behaviors.update(_parse_recv_omit_specs(recv))
        pattern = FailurePattern(behaviors)
    return pattern
