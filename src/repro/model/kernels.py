"""Evaluation-kernel selection for the knowledge machinery.

The formula evaluator has two interchangeable inner representations for
:class:`~repro.model.system.TruthAssignment`:

* ``bitset`` (the default) — every assignment is one arbitrary-precision
  integer with a bit per point of the system; boolean algebra, knowledge
  tests and fixpoints become word-wide integer operations;
* ``reference`` — the original list-of-lists-of-``bool`` evaluator, kept as
  the executable specification the bitset kernel is differentially tested
  against.

The active kernel is chosen by the ``REPRO_EVAL_KERNEL`` environment
variable (normalized: surrounding whitespace and case are ignored; empty
means default) or, with precedence, by the :func:`use_kernel` context
manager, which tests use to pin a kernel without touching the process
environment.  Evaluation caches are keyed by the active kernel, so
switching mid-process can never serve an assignment of the wrong
representation.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List

from ..errors import ConfigurationError

#: Environment variable selecting the evaluation kernel.
KERNEL_ENV = "REPRO_EVAL_KERNEL"

BITSET = "bitset"
REFERENCE = "reference"

#: All recognized kernel names.
KERNELS = (BITSET, REFERENCE)

DEFAULT_KERNEL = BITSET

#: Largest system (in points, ``runs * (horizon + 1)``) evaluated with
#: packed-integer masks.  Beyond this, every mask op and group test costs
#: O(mask length) in CPython's arbitrary-precision arithmetic, so the
#: bitset kernel degrades quadratically with system size while the
#: list-based reference layout stays linear — on the 385k-run Proposition
#: 6.3 cell the bitset evaluator is ~3x *slower*.  Systems above the limit
#: therefore fall back to the reference representation even when the
#: bitset kernel is selected (see ``System.bitset_active``).  The limit
#: sits well above every fixpoint-heavy workload (crash ``n=4`` is ~5k
#: points) and well below the huge enumerations (~1.2M points).
BITSET_POINT_LIMIT = 1 << 18

_override_stack: List[str] = []


def _check_kernel(name: str, origin: str) -> str:
    if name not in KERNELS:
        raise ConfigurationError(
            f"{origin} must be one of {', '.join(KERNELS)}; got {name!r}"
        )
    return name


def active_kernel() -> str:
    """The kernel name every new evaluation uses.

    Precedence: innermost :func:`use_kernel` override, then the
    ``REPRO_EVAL_KERNEL`` environment variable, then :data:`DEFAULT_KERNEL`.
    """
    if _override_stack:
        return _override_stack[-1]
    raw = os.environ.get(KERNEL_ENV)
    if raw is None:
        return DEFAULT_KERNEL
    text = raw.strip().lower()
    if not text:
        return DEFAULT_KERNEL
    return _check_kernel(text, f"{KERNEL_ENV}={raw!r}")


@contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Pin the evaluation kernel within a ``with`` block (reentrant)."""
    name = _check_kernel(name.strip().lower(), "use_kernel() argument")
    _override_stack.append(name)
    try:
        yield name
    finally:
        _override_stack.pop()
