"""Evaluation-kernel selection for the knowledge machinery.

The formula evaluator has three interchangeable inner representations for
:class:`~repro.model.system.TruthAssignment`:

* ``bitset`` (the default) — every assignment is one arbitrary-precision
  integer with a bit per point of the system; boolean algebra, knowledge
  tests and fixpoints become word-wide integer operations.  Ideal up to
  :data:`BITSET_POINT_LIMIT` points, beyond which every big-int operation
  costs O(mask length) and the per-group subset tests turn quadratic;
* ``chunked`` — the same point layout split into 64-bit limbs
  (:mod:`repro.model.chunked`), with limb-sliced state-group masks and
  popcount subset tests, so boolean algebra and knowledge sweeps stay
  O(limbs touched) at any scale.  Systems larger than
  :data:`BITSET_POINT_LIMIT` are upgraded to this kernel automatically
  when ``bitset`` is selected (see ``System.effective_kernel``);
* ``reference`` — the original list-of-lists-of-``bool`` evaluator, kept
  as the executable specification the packed kernels are differentially
  tested against.

The active kernel is chosen by the ``REPRO_EVAL_KERNEL`` environment
variable (normalized: surrounding whitespace and case are ignored; empty
means default) or, with precedence, by the :func:`use_kernel` context
manager, which tests use to pin a kernel without touching the process
environment.  Environment values are validated once per distinct raw
string (not re-parsed on every :func:`active_kernel` call), and
configuration errors carry the full provenance of the selection — the
``use_kernel`` override stack plus the environment value — so a bad name
is attributable at a glance.  Evaluation caches are keyed by the kernel a
system actually resolves to, so switching mid-process can never serve an
assignment of the wrong representation.

Every kernel resolution is observable: ``System.effective_kernel`` reports
its choice through :func:`note_selection`, which bumps the
``kernel_selected_{bitset,chunked,reference}`` obs counters and records a
bounded per-system selection log surfaced by ``repro-eba stats``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .. import obs
from ..errors import ConfigurationError

#: Environment variable selecting the evaluation kernel.
KERNEL_ENV = "REPRO_EVAL_KERNEL"

BITSET = "bitset"
CHUNKED = "chunked"
REFERENCE = "reference"

#: All recognized kernel names.
KERNELS = (BITSET, CHUNKED, REFERENCE)

DEFAULT_KERNEL = BITSET

#: Largest system (in points, ``runs * (horizon + 1)``) evaluated with
#: single-integer packed masks.  Beyond this, every big-int mask op and
#: group test costs O(mask length) in CPython's arbitrary-precision
#: arithmetic, so the bitset kernel degrades quadratically with system
#: size.  Systems above the limit are therefore *upgraded* to the
#: ``chunked`` limb-array kernel when ``bitset`` is selected (see
#: ``System.effective_kernel``) — the old silent fall back to the
#: reference layout is gone.  The limit sits well above every
#: fixpoint-heavy workload (crash ``n=4`` is ~5k points) and well below
#: the huge enumerations (~1.2M points).
BITSET_POINT_LIMIT = 1 << 18


def resolve_selection(requested: str, points: int) -> str:
    """The kernel a *requested* selection resolves to at *points* points.

    Pure (no counters, no logging): ``bitset`` upgrades to ``chunked``
    beyond :data:`BITSET_POINT_LIMIT`; explicit ``chunked`` and
    ``reference`` selections are honoured at any size.
    ``System.effective_kernel`` is this rule plus per-system
    observability (:func:`note_selection`); external reporters — e.g.
    the bench runner's per-entry kernel metadata — call it directly so
    their notion of the upgrade can never drift from the evaluator's.
    """
    if requested == BITSET and points > BITSET_POINT_LIMIT:
        return CHUNKED
    return requested


_override_stack: List[str] = []

#: Memoized environment parse: raw string -> validated kernel name.  The
#: environment is still *read* on every uncached :func:`active_kernel`
#: call (so tests may monkeypatch it), but each distinct raw value is
#: validated exactly once.
_env_cache: Optional[Tuple[str, str]] = None


def selection_provenance() -> str:
    """Human-readable description of where the kernel choice comes from.

    Lists, outermost first, the full :func:`use_kernel` override stack,
    then the environment value (or its absence), then the default — the
    complete precedence chain, included verbatim in every
    :class:`~repro.errors.ConfigurationError` this module raises.
    """
    parts: List[str] = []
    if _override_stack:
        chain = " > ".join(f"use_kernel({name!r})" for name in _override_stack)
        parts.append(f"override stack (outermost first): {chain}")
    raw = os.environ.get(KERNEL_ENV)
    if raw is None:
        parts.append(f"{KERNEL_ENV} unset")
    else:
        parts.append(f"{KERNEL_ENV}={raw!r}")
    parts.append(f"default {DEFAULT_KERNEL!r}")
    return "; ".join(parts)


def _check_kernel(name: str, origin: str) -> str:
    if name not in KERNELS:
        raise ConfigurationError(
            f"{origin} must be one of {', '.join(KERNELS)}; got {name!r} "
            f"[{selection_provenance()}]"
        )
    return name


def active_kernel() -> str:
    """The kernel name every new evaluation uses.

    Precedence: innermost :func:`use_kernel` override, then the
    ``REPRO_EVAL_KERNEL`` environment variable, then :data:`DEFAULT_KERNEL`.
    Override names were validated when pushed; each distinct environment
    value is validated once and memoized.
    """
    global _env_cache
    if _override_stack:
        return _override_stack[-1]
    raw = os.environ.get(KERNEL_ENV)
    if raw is None:
        return DEFAULT_KERNEL
    cached = _env_cache
    if cached is not None and cached[0] == raw:
        return cached[1]
    text = raw.strip().lower()
    name = DEFAULT_KERNEL if not text else _check_kernel(
        text, f"{KERNEL_ENV}={raw!r}"
    )
    _env_cache = (raw, name)
    return name


@contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Pin the evaluation kernel within a ``with`` block (reentrant).

    The name is validated once, on entry; a bad name reports the
    already-active override stack and environment so nested misuse is
    attributable.
    """
    name = _check_kernel(name.strip().lower(), "use_kernel() argument")
    _override_stack.append(name)
    try:
        yield name
    finally:
        _override_stack.pop()


# -- selection observability --------------------------------------------------

#: Bounded log of per-system kernel resolutions, newest last.  Keyed by
#: (system descriptor, requested, selected) so re-resolutions of the same
#: system are recorded once; surfaced by ``repro-eba stats``.
_selections: "OrderedDict[Tuple[str, str, str], Dict[str, object]]" = (
    OrderedDict()
)
_SELECTION_LOG_LIMIT = 64


def note_selection(
    descriptor: str, points: int, requested: str, selected: str
) -> None:
    """Record that a system resolved *requested* to *selected*.

    Bumps the ``kernel_selected_<selected>`` obs counter (every call, so
    counters reflect distinct system resolutions) and appends to the
    bounded selection log.
    """
    obs.count(f"kernel_selected_{selected}")
    key = (descriptor, requested, selected)
    if key in _selections:
        _selections.move_to_end(key)
        return
    _selections[key] = {
        "system": descriptor,
        "points": int(points),
        "requested": requested,
        "selected": selected,
        "upgraded": requested != selected,
    }
    while len(_selections) > _SELECTION_LOG_LIMIT:
        _selections.popitem(last=False)


def kernel_selections() -> List[Dict[str, object]]:
    """The recorded per-system kernel resolutions, oldest first."""
    return [dict(entry) for entry in _selections.values()]


def reset_selection_log() -> None:
    """Drop the selection log (mainly for tests and ``stats --clear``)."""
    _selections.clear()
