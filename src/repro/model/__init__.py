"""Model substrate: configurations, failures, views, runs and systems.

This subpackage implements the paper's synchronous round-based system model
(Section 2.3) and the full-information protocol state space (Section 2.4).
Everything above it — knowledge, protocols, experiments — is expressed in
terms of these objects.
"""

from .adversary import (
    Adversary,
    ExhaustiveCrashAdversary,
    ExhaustiveOmissionAdversary,
    ExhaustiveReceiveOmissionAdversary,
    ExplicitAdversary,
    SampledGeneralOmissionAdversary,
    SampledOmissionAdversary,
    SilentCrashAdversary,
    exhaustive_adversary,
)
from .builder import (
    clear_system_cache,
    crash_system,
    default_horizon,
    omission_system,
    restricted_system,
    system_cache_info,
    system_for,
)
from .config import (
    InitialConfiguration,
    all_configurations,
    one_dissenter,
    uniform_configuration,
)
from .failures import (
    NO_FAILURES,
    CrashBehavior,
    FailureMode,
    FailurePattern,
    GeneralOmissionBehavior,
    OmissionBehavior,
    ProcessorId,
    ReceiveOmissionBehavior,
    make_pattern,
)
from .chunked import ChunkedAssignment, ChunkedIndex
from .kernels import (
    BITSET,
    CHUNKED,
    KERNEL_ENV,
    KERNELS,
    REFERENCE,
    active_kernel,
    kernel_selections,
    use_kernel,
)
from .provider import PROVIDER, SystemProvider, get_provider
from .runs import Run, build_run
from .system import (
    BitsetAssignment,
    BitsetIndex,
    Point,
    System,
    TruthAssignment,
    build_system,
)
from .views import ViewId, ViewInfo, ViewTable

__all__ = [
    "Adversary",
    "BITSET",
    "BitsetAssignment",
    "BitsetIndex",
    "CHUNKED",
    "ChunkedAssignment",
    "ChunkedIndex",
    "CrashBehavior",
    "ExhaustiveCrashAdversary",
    "ExhaustiveOmissionAdversary",
    "ExhaustiveReceiveOmissionAdversary",
    "ExplicitAdversary",
    "FailureMode",
    "FailurePattern",
    "GeneralOmissionBehavior",
    "InitialConfiguration",
    "NO_FAILURES",
    "OmissionBehavior",
    "Point",
    "ProcessorId",
    "Run",
    "ReceiveOmissionBehavior",
    "PROVIDER",
    "SampledGeneralOmissionAdversary",
    "SampledOmissionAdversary",
    "SilentCrashAdversary",
    "System",
    "SystemProvider",
    "TruthAssignment",
    "ViewId",
    "ViewInfo",
    "ViewTable",
    "KERNEL_ENV",
    "KERNELS",
    "REFERENCE",
    "active_kernel",
    "kernel_selections",
    "use_kernel",
    "all_configurations",
    "build_run",
    "build_system",
    "clear_system_cache",
    "crash_system",
    "default_horizon",
    "exhaustive_adversary",
    "get_provider",
    "make_pattern",
    "omission_system",
    "one_dissenter",
    "restricted_system",
    "system_cache_info",
    "system_for",
    "uniform_configuration",
]
