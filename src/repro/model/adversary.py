"""Adversaries: enumerators and samplers of failure patterns.

Knowledge operators quantify over *all* runs of a protocol, so the exactness
of every knowledge test in this library depends on enumerating the complete
space of failure patterns for the chosen parameters.  This module provides:

* :class:`ExhaustiveCrashAdversary` — every canonical crash pattern with at
  most ``t`` faulty processors and crash rounds within the horizon.
* :class:`ExhaustiveOmissionAdversary` — every canonical sending-omission
  pattern (exponential; intended for small ``n``, ``t``, ``horizon``).
* :class:`SampledOmissionAdversary` — seeded random sampling for statistics
  experiments at sizes where exhaustive enumeration is intractable.
* :class:`SilentCrashAdversary` — the restricted "crash silently at round k"
  family, useful for fast large-``n`` sweeps.

Canonicalization (documented in DESIGN.md): a crash in round ``k`` that
delivers the complete round-``k`` message set is observationally identical to
a crash in round ``k + 1`` delivering nothing, so the exhaustive crash
adversary only emits strict receiver subsets.  Behaviours with no observable
deviation inside the horizon are skipped entirely — a "faulty" processor that
never misbehaves would duplicate the nonfaulty run while perturbing the
nonrigid set ``N`` for no informational reason.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .failures import (
    CrashBehavior,
    FailureMode,
    FailurePattern,
    GeneralOmissionBehavior,
    OmissionBehavior,
    ProcessorId,
    ReceiveOmissionBehavior,
)


def _strict_subsets(items: Sequence[ProcessorId]) -> Iterator[FrozenSet[ProcessorId]]:
    """All strict subsets of *items* (excluding the full set)."""
    for size in range(len(items)):
        for combo in itertools.combinations(items, size):
            yield frozenset(combo)


def _all_subsets(items: Sequence[ProcessorId]) -> Iterator[FrozenSet[ProcessorId]]:
    """All subsets of *items* (including empty and full)."""
    for size in range(len(items) + 1):
        for combo in itertools.combinations(items, size):
            yield frozenset(combo)


class Adversary(ABC):
    """A source of failure patterns for a fixed ``(n, t, horizon)``.

    Adversaries are deterministic iterables: iterating twice yields the same
    patterns in the same order, which keeps enumerated systems reproducible.
    """

    def __init__(self, n: int, t: int, horizon: int) -> None:
        if n < 2:
            raise ConfigurationError(f"need n >= 2, got {n}")
        if t < 0 or t >= n:
            raise ConfigurationError(f"need 0 <= t < n, got t={t}, n={n}")
        if horizon < 1:
            raise ConfigurationError(f"need horizon >= 1, got {horizon}")
        self.n = n
        self.t = t
        self.horizon = horizon

    @property
    @abstractmethod
    def mode(self) -> FailureMode:
        """The failure mode this adversary generates."""

    @abstractmethod
    def behaviors_for(self, processor: ProcessorId) -> Iterator[object]:
        """All canonical behaviours this adversary allows for *processor*."""

    def patterns(self) -> Iterator[FailurePattern]:
        """Yield every failure pattern: the failure-free pattern first, then
        all assignments of canonical behaviours to faulty sets of size
        ``1..t``."""
        yield FailurePattern(())
        processors = list(range(self.n))
        for size in range(1, self.t + 1):
            for faulty_set in itertools.combinations(processors, size):
                behavior_choices = [
                    list(self.behaviors_for(processor)) for processor in faulty_set
                ]
                for assignment in itertools.product(*behavior_choices):
                    yield FailurePattern(dict(zip(faulty_set, assignment)))

    def count_patterns(self) -> int:
        """Number of patterns generated (materializes lazily, cached)."""
        return sum(1 for _ in self.patterns())

    def __iter__(self) -> Iterator[FailurePattern]:
        return self.patterns()


class ExhaustiveCrashAdversary(Adversary):
    """Every canonical crash failure pattern with at most ``t`` failures.

    Per-processor behaviours: crash round ``k`` in ``1..horizon`` and a
    *strict* subset of the other processors receiving the round-``k``
    message.  This is exactly the canonical, duplicate-free parameterization
    of the paper's crash model truncated at the horizon.
    """

    @property
    def mode(self) -> FailureMode:
        return FailureMode.CRASH

    def behaviors_for(self, processor: ProcessorId) -> Iterator[CrashBehavior]:
        others = [p for p in range(self.n) if p != processor]
        for crash_round in range(1, self.horizon + 1):
            for receivers in _strict_subsets(others):
                yield CrashBehavior(crash_round, receivers)


class SilentCrashAdversary(Adversary):
    """The restricted crash family "die silently at the start of round k".

    Each faulty processor sends everything before round ``k`` and nothing
    from round ``k`` on.  This family is *not* sufficient for exact
    knowledge evaluation (knowledge computed against it is an
    over-approximation) but is ideal for large-``n`` decision-time sweeps of
    concrete protocols, where only the trace matters.
    """

    @property
    def mode(self) -> FailureMode:
        return FailureMode.CRASH

    def behaviors_for(self, processor: ProcessorId) -> Iterator[CrashBehavior]:
        for crash_round in range(1, self.horizon + 1):
            yield CrashBehavior(crash_round, frozenset())


class ExhaustiveOmissionAdversary(Adversary):
    """Every canonical sending-omission pattern with at most ``t`` failures.

    Per-processor behaviours: an arbitrary choice, for each round in
    ``1..horizon``, of the subset of other processors whose message is
    omitted — excluding the all-empty choice (no observable deviation).
    The behaviour count per processor is ``2**((n-1) * horizon) - 1``; use
    only for small parameters (see DESIGN.md section 2).
    """

    @property
    def mode(self) -> FailureMode:
        return FailureMode.OMISSION

    def behaviors_for(self, processor: ProcessorId) -> Iterator[OmissionBehavior]:
        others = [p for p in range(self.n) if p != processor]
        per_round = list(_all_subsets(others))
        for choice in itertools.product(per_round, repeat=self.horizon):
            if all(not subset for subset in choice):
                continue  # vacuous: no observable deviation
            yield OmissionBehavior(
                {
                    round_number: subset
                    for round_number, subset in enumerate(choice, start=1)
                    if subset
                }
            )


class ExhaustiveReceiveOmissionAdversary(Adversary):
    """Every canonical receive-omission pattern ([PT86] extension mode).

    Mirrors :class:`ExhaustiveOmissionAdversary` with the direction
    reversed: per round, an arbitrary subset of *senders* whose message the
    faulty processor fails to receive.
    """

    @property
    def mode(self) -> FailureMode:
        return FailureMode.RECEIVE_OMISSION

    def behaviors_for(
        self, processor: ProcessorId
    ) -> Iterator[ReceiveOmissionBehavior]:
        others = [p for p in range(self.n) if p != processor]
        per_round = list(_all_subsets(others))
        for choice in itertools.product(per_round, repeat=self.horizon):
            if all(not subset for subset in choice):
                continue
            yield ReceiveOmissionBehavior(
                {
                    round_number: subset
                    for round_number, subset in enumerate(choice, start=1)
                    if subset
                }
            )


class SampledGeneralOmissionAdversary(Adversary):
    """Seeded random general-omission patterns ([PT86] extension mode).

    The exhaustive general-omission space squares the already-exponential
    sending-omission space, so only a sampler is provided.  Each faulty
    processor gets independent random send- and receive-omission tables; a
    vacuous draw is patched with one forced omission.
    """

    def __init__(
        self,
        n: int,
        t: int,
        horizon: int,
        *,
        samples: int = 100,
        seed: int = 0,
        omission_probability: float = 0.3,
    ) -> None:
        super().__init__(n, t, horizon)
        if samples < 0:
            raise ConfigurationError(f"need samples >= 0, got {samples}")
        if not 0.0 <= omission_probability <= 1.0:
            raise ConfigurationError(
                "omission_probability must lie in [0, 1], "
                f"got {omission_probability}"
            )
        self.samples = samples
        self.seed = seed
        self.omission_probability = omission_probability

    @property
    def mode(self) -> FailureMode:
        return FailureMode.GENERAL_OMISSION

    def behaviors_for(self, processor: ProcessorId) -> Iterator[object]:
        raise NotImplementedError(
            "SampledGeneralOmissionAdversary generates whole patterns, not "
            "per-processor behaviour enumerations"
        )

    def _random_table(
        self, rng: random.Random, processor: ProcessorId
    ) -> Dict[int, List[ProcessorId]]:
        table: Dict[int, List[ProcessorId]] = {}
        for round_number in range(1, self.horizon + 1):
            dropped = [
                other
                for other in range(self.n)
                if other != processor
                and rng.random() < self.omission_probability
            ]
            if dropped:
                table[round_number] = dropped
        return table

    def patterns(self) -> Iterator[FailurePattern]:
        rng = random.Random(self.seed)
        yield FailurePattern(())
        seen = set()
        produced = 0
        attempts = 0
        max_attempts = max(20 * self.samples, 100)
        while produced < self.samples and attempts < max_attempts:
            attempts += 1
            if self.t < 1:
                break
            size = rng.randint(1, self.t)
            faulty = rng.sample(range(self.n), size)
            behaviors: Dict[ProcessorId, GeneralOmissionBehavior] = {}
            for processor in faulty:
                send = self._random_table(rng, processor)
                receive = self._random_table(rng, processor)
                if not send and not receive:
                    victim = rng.choice(
                        [p for p in range(self.n) if p != processor]
                    )
                    send[rng.randint(1, self.horizon)] = [victim]
                behaviors[processor] = GeneralOmissionBehavior(send, receive)
            pattern = FailurePattern(behaviors)
            if pattern in seen:
                continue
            seen.add(pattern)
            produced += 1
            yield pattern


class SampledOmissionAdversary(Adversary):
    """Seeded random sample of sending-omission patterns.

    Produces the failure-free pattern plus *samples* random patterns.  Each
    sample independently picks a faulty set of size ``1..t`` and, for each
    faulty processor and round, a random omission subset (biased by
    *omission_probability* per destination).  Deduplicated, deterministic
    given the seed.
    """

    def __init__(
        self,
        n: int,
        t: int,
        horizon: int,
        *,
        samples: int = 100,
        seed: int = 0,
        omission_probability: float = 0.4,
    ) -> None:
        super().__init__(n, t, horizon)
        if samples < 0:
            raise ConfigurationError(f"need samples >= 0, got {samples}")
        if not 0.0 <= omission_probability <= 1.0:
            raise ConfigurationError(
                "omission_probability must lie in [0, 1], "
                f"got {omission_probability}"
            )
        self.samples = samples
        self.seed = seed
        self.omission_probability = omission_probability

    @property
    def mode(self) -> FailureMode:
        return FailureMode.OMISSION

    def behaviors_for(self, processor: ProcessorId) -> Iterator[OmissionBehavior]:
        raise NotImplementedError(
            "SampledOmissionAdversary generates whole patterns, not "
            "per-processor behaviour enumerations"
        )

    def patterns(self) -> Iterator[FailurePattern]:
        rng = random.Random(self.seed)
        yield FailurePattern(())
        seen = set()
        produced = 0
        attempts = 0
        max_attempts = max(20 * self.samples, 100)
        while produced < self.samples and attempts < max_attempts:
            attempts += 1
            size = rng.randint(1, self.t) if self.t >= 1 else 0
            if size == 0:
                continue
            faulty = rng.sample(range(self.n), size)
            behaviors: Dict[ProcessorId, OmissionBehavior] = {}
            for processor in faulty:
                omissions: Dict[int, List[ProcessorId]] = {}
                for round_number in range(1, self.horizon + 1):
                    dropped = [
                        dest
                        for dest in range(self.n)
                        if dest != processor
                        and rng.random() < self.omission_probability
                    ]
                    if dropped:
                        omissions[round_number] = dropped
                if not omissions:
                    # Force at least one observable omission so the
                    # processor is genuinely faulty.
                    victim = rng.choice(
                        [dest for dest in range(self.n) if dest != processor]
                    )
                    omissions[rng.randint(1, self.horizon)] = [victim]
                behaviors[processor] = OmissionBehavior(omissions)
            pattern = FailurePattern(behaviors)
            if pattern in seen:
                continue
            seen.add(pattern)
            produced += 1
            yield pattern


class ExplicitAdversary(Adversary):
    """An adversary over a caller-supplied list of patterns.

    Used to build the *restricted sub-systems* of DESIGN.md (e.g. the closed
    run family from the proof of Proposition 6.3).  The failure-free pattern
    is prepended if absent, keeping specifications that quantify over
    failure-free runs meaningful.
    """

    def __init__(
        self,
        n: int,
        t: int,
        horizon: int,
        patterns: Sequence[FailurePattern],
        *,
        mode: FailureMode,
        include_failure_free: bool = True,
    ) -> None:
        super().__init__(n, t, horizon)
        self._mode = mode
        ordered: List[FailurePattern] = []
        seen = set()
        empty = FailurePattern(())
        if include_failure_free:
            ordered.append(empty)
            seen.add(empty)
        for pattern in patterns:
            pattern.validate(n, t)
            pattern_mode = pattern.mode()
            if pattern_mode is not None and pattern_mode is not mode:
                raise ConfigurationError(
                    f"pattern {pattern} is not a {mode} pattern"
                )
            if pattern not in seen:
                seen.add(pattern)
                ordered.append(pattern)
        self._patterns = ordered

    @property
    def mode(self) -> FailureMode:
        return self._mode

    def behaviors_for(self, processor: ProcessorId) -> Iterator[object]:
        raise NotImplementedError(
            "ExplicitAdversary holds whole patterns, not per-processor "
            "behaviour enumerations"
        )

    def patterns(self) -> Iterator[FailurePattern]:
        return iter(self._patterns)


def exhaustive_adversary(
    mode: FailureMode, n: int, t: int, horizon: int
) -> Adversary:
    """The exhaustive adversary for *mode* (factory helper).

    General omissions have no exhaustive enumerator (the space squares the
    sending-omission one); use
    :class:`SampledGeneralOmissionAdversary` there.
    """
    if mode is FailureMode.CRASH:
        return ExhaustiveCrashAdversary(n, t, horizon)
    if mode is FailureMode.OMISSION:
        return ExhaustiveOmissionAdversary(n, t, horizon)
    if mode is FailureMode.RECEIVE_OMISSION:
        return ExhaustiveReceiveOmissionAdversary(n, t, horizon)
    raise ConfigurationError(
        f"no exhaustive adversary for failure mode {mode!r}"
    )
