"""SystemProvider: the layered cache pipeline for enumerated systems.

Every experiment and knowledge query funnels through one enumeration per
``(mode, n, t, horizon)`` cell.  This module layers the lookup:

1. a **bounded in-memory LRU** (hits are free and share one
   :class:`~repro.model.system.System` instance process-wide, exactly like
   the old ``_SYSTEM_CACHE`` dict — but bounded and introspectable);
2. a **versioned on-disk cache** under ``.repro_cache/`` (override with the
   ``REPRO_CACHE_DIR`` env var, disable with ``REPRO_DISK_CACHE=0``),
   round-tripped through :mod:`repro.io.system_codec` so a warm process
   skips the doubly-exponential enumeration entirely; each cell keeps a
   portable JSON payload plus a **pickle sidecar** (``REPRO_PICKLE_CACHE=0``
   disables it) that loads ~4-5x faster on the huge cells and is tried
   first, falling back to JSON on any mismatch;
3. a fresh (possibly parallel) :func:`~repro.model.system.build_system` on
   a full miss, after which both cache layers are populated.

Cache files are keyed by ``(mode, n, t, horizon)`` *and* versioned by the
codec version plus the library version, so a library upgrade or payload
change can never resurrect a stale enumeration.  Corrupted or unreadable
cache files are treated as misses: the provider rebuilds and overwrites
them, never crashes.

Only exhaustive default-config systems are cached; restricted systems and
explicit config subsets always build fresh.

Thread-safety: the in-memory layers (system LRU, arrays LRU, hit/miss
counters) are guarded by one reentrant lock, so the serve daemon's worker
threads may share the process-wide provider.  Builds and disk I/O happen
*outside* the lock — a doubly-exponential enumeration must not serialize
unrelated cached lookups — which means two threads missing on the same
cell may both build it; the second :meth:`SystemProvider._remember` wins
and the duplicate work is bounded by one cell.  The daemon avoids even
that by routing non-resident cells through the fork-pool.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from .. import obs, trace
from ..errors import ConfigurationError
from .adversary import exhaustive_adversary
from .config import InitialConfiguration
from .failures import FailureMode
from .system import System, build_system, extend_system

#: Default bound on the in-memory layer.  Systems are large; a handful of
#: parameter cells covers every experiment in the suite.
DEFAULT_MAX_MEMORY_ENTRIES = 16

#: Default bound on the in-memory arrays layer.  Array projections are much
#: smaller than systems but accounted separately — arrays pressure must
#: never evict a hot system (and vice versa).
DEFAULT_MAX_ARRAYS_ENTRIES = 8

CacheKey = Tuple[str, int, int, int]


def _default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


#: Env values (normalized) that switch the disk layer off.
_DISK_CACHE_FALSY = frozenset({"0", "false", "no", "off"})


def _disk_enabled_default() -> bool:
    raw = os.environ.get("REPRO_DISK_CACHE", "1").strip().lower()
    return raw not in _DISK_CACHE_FALSY


def _pickle_enabled_default() -> bool:
    raw = os.environ.get("REPRO_PICKLE_CACHE", "1").strip().lower()
    return raw not in _DISK_CACHE_FALSY


class SystemProvider:
    """Bounded LRU + versioned disk cache in front of ``build_system``."""

    def __init__(
        self,
        *,
        max_memory_entries: int = DEFAULT_MAX_MEMORY_ENTRIES,
        max_arrays_entries: int = DEFAULT_MAX_ARRAYS_ENTRIES,
        cache_dir: Optional[str] = None,
        disk_cache: Optional[bool] = None,
    ) -> None:
        if max_memory_entries < 1:
            raise ConfigurationError(
                f"need max_memory_entries >= 1, got {max_memory_entries}"
            )
        if max_arrays_entries < 1:
            raise ConfigurationError(
                f"need max_arrays_entries >= 1, got {max_arrays_entries}"
            )
        self.max_memory_entries = max_memory_entries
        self.max_arrays_entries = max_arrays_entries
        self._cache_dir = cache_dir
        self._disk_cache = disk_cache
        self._memory: "OrderedDict[CacheKey, System]" = OrderedDict()
        # Arrays live in their own accounted LRU: sharing the system
        # OrderedDict (the old design) conflated the hit/size/eviction
        # counters and let arrays pressure evict hot systems.
        self._arrays_memory: "OrderedDict[CacheKey, object]" = OrderedDict()
        # Reentrant: _remember (locked) is reached from get (locked
        # sections) and from extend's per-round loop.
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._arrays_evictions = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_prunes = 0

    # -- configuration -----------------------------------------------------

    @property
    def cache_dir(self) -> str:
        """Directory holding on-disk cache files (env-overridable)."""
        return self._cache_dir or _default_cache_dir()

    @property
    def disk_enabled(self) -> bool:
        """Whether the on-disk layer is active (env-overridable)."""
        if self._disk_cache is not None:
            return self._disk_cache
        return _disk_enabled_default()

    def _cache_path(self, key: CacheKey) -> str:
        name = self._cell_prefix(key) + self._current_suffix()
        return os.path.join(self.cache_dir, name)

    @staticmethod
    def _cell_prefix(key: CacheKey) -> str:
        """Version-free filename prefix shared by all files of a cell."""
        mode, n, t, horizon = key
        return f"system_{mode}_n{n}_t{t}_h{horizon}_"

    def _current_suffix(self) -> str:
        from .. import __version__
        from ..io.system_codec import CODEC_VERSION

        return f"c{CODEC_VERSION}_v{__version__}.json.gz"

    def _pickle_suffix(self) -> str:
        from .. import __version__
        from ..io.system_codec import CODEC_VERSION

        return f"c{CODEC_VERSION}_v{__version__}.pickle"

    def _pickle_path(self, key: CacheKey) -> str:
        name = self._cell_prefix(key) + self._pickle_suffix()
        return os.path.join(self.cache_dir, name)

    def _arrays_suffix(self) -> str:
        from .. import __version__
        from ..io.system_codec import CODEC_VERSION
        from .partition import ARRAYS_VERSION

        return f"a{ARRAYS_VERSION}_c{CODEC_VERSION}_v{__version__}.npz"

    def _arrays_path(self, key: CacheKey) -> str:
        name = self._cell_prefix(key) + self._arrays_suffix()
        return os.path.join(self.cache_dir, name)

    @property
    def pickle_enabled(self) -> bool:
        """Whether the pickle sidecar layer is active (env-overridable)."""
        return self.disk_enabled and _pickle_enabled_default()

    def has_memory_cell(
        self, mode: FailureMode, n: int, t: int, horizon: int
    ) -> bool:
        """Whether the cell is resident in the in-memory LRU right now.

        A pure peek: does not touch recency order or hit/miss counters.
        The serve daemon uses it (with :meth:`has_current_cell`) to place
        queries inline vs. on the fork-pool.
        """
        key: CacheKey = (mode.value, n, t, horizon)
        with self._lock:
            return key in self._memory

    def peek(
        self, mode: FailureMode, n: int, t: int, horizon: int
    ) -> Optional[System]:
        """The memory-resident :class:`System` for a cell, or ``None``.

        A pure peek like :meth:`has_memory_cell` — no build, no disk
        load, no recency bump.  Callers use it for *identity* checks: a
        system instance that ``is`` the peeked cell is the provider's
        canonical exhaustive enumeration for those parameters (a
        restricted/explicit-adversary system never is), so projections
        fetched by ``(mode, n, t, horizon)`` describe exactly it.
        """
        key: CacheKey = (mode.value, n, t, horizon)
        with self._lock:
            return self._memory.get(key)

    def has_current_cell(
        self, mode: FailureMode, n: int, t: int, horizon: int
    ) -> bool:
        """Whether a current-version disk file exists for the cell.

        Used by the execution engine's build stage to decide if a worker
        needs to enumerate: a present file means the parent can load the
        system cheaply, so the build shard is a no-op.
        """
        if not self.disk_enabled:
            return False
        key: CacheKey = (mode.value, n, t, horizon)
        return os.path.exists(self._cache_path(key)) or (
            self.pickle_enabled and os.path.exists(self._pickle_path(key))
        )

    def has_current_arrays(
        self, mode: FailureMode, n: int, t: int, horizon: int
    ) -> bool:
        """Whether a current-version ``.npz`` array sidecar exists."""
        if not self.disk_enabled:
            return False
        key: CacheKey = (mode.value, n, t, horizon)
        return os.path.exists(self._arrays_path(key))

    def get_arrays(self, mode: FailureMode, n: int, t: int, horizon: int):
        """The cell's :class:`~repro.model.partition.SystemArrays`.

        Loads the ``.npz`` sidecar when present — orders of magnitude
        cheaper than unpickling the ``Run`` objects on the big cells —
        and otherwise projects the full system (through :meth:`get`,
        populating the regular layers on the way) and writes the sidecar
        for the next process.  Array projections are memoized in their
        own bounded LRU (``max_arrays_entries``), accounted separately
        from systems.
        """
        from .partition import SystemArrays

        key: CacheKey = (mode.value, n, t, horizon)
        with self._lock:
            cached = self._arrays_memory.get(key)
            if cached is not None:
                self._arrays_memory.move_to_end(key)
                obs.count("arrays_cache_hits")
                return cached
        arrays = None
        path = self._arrays_path(key)
        if self.disk_enabled and os.path.exists(path):
            try:
                with obs.stage("arrays_cache_load"):
                    arrays = SystemArrays.load(path)
                obs.count("arrays_disk_hits")
            except Exception:
                arrays = None
        if arrays is None:
            obs.count("arrays_cache_misses")
            # Arrays-first fast path: when the object graph is not
            # already materialized anywhere (memory or disk), enumerate
            # straight into arrays and skip Run/ViewTable construction
            # entirely — evaluation-only consumers never pay for the
            # object graph.  Byte-identical to the projection below.
            if not self.has_memory_cell(mode, n, t, horizon) and not (
                self.has_current_cell(mode, n, t, horizon)
            ):
                from . import fastbuild

                arrays = fastbuild.try_build_arrays(mode, n, t, horizon)
                if arrays is not None:
                    self._store_arrays(key, arrays)
            if arrays is None:
                system = self.get(mode, n, t, horizon)
                arrays = SystemArrays.from_system(system)
                self._store_arrays(key, arrays)
        self._remember_arrays(key, arrays)
        return arrays

    def _store_arrays(self, key: CacheKey, arrays) -> None:
        if not self.disk_enabled:
            return
        path = self._arrays_path(key)
        try:
            with obs.stage("arrays_cache_store"):
                os.makedirs(self.cache_dir, exist_ok=True)
                # numpy appends ``.npz`` to names without it, so the
                # temp file must already end that way to stay findable.
                fd, temp_path = tempfile.mkstemp(
                    dir=self.cache_dir, suffix=".tmp.npz"
                )
                os.close(fd)
                try:
                    arrays.save(temp_path)
                    os.replace(temp_path, path)
                finally:
                    if os.path.exists(temp_path):
                        os.unlink(temp_path)
            # Same keep-set discipline as _store_to_disk: an arrays-only
            # workflow (get_arrays over a warm system cache) must not leak
            # old-version .npz siblings after a codec or numpy bump.
            self._prune_stale(
                key,
                keep={
                    os.path.basename(self._cache_path(key)),
                    os.path.basename(self._pickle_path(key)),
                    os.path.basename(path),
                },
            )
        except Exception:
            # Same contract as the other layers: caching must never
            # break evaluation (read-only disk, python backend, ...).
            pass

    # -- lookup ------------------------------------------------------------

    def get(
        self,
        mode: FailureMode,
        n: int,
        t: int,
        horizon: int,
        *,
        configs: Optional[Iterable[InitialConfiguration]] = None,
        use_cache: bool = True,
        workers: Optional[int] = None,
    ) -> System:
        """The exhaustive system for the cell, through the cache layers.

        ``configs`` subsets and ``use_cache=False`` bypass both layers and
        build fresh.
        """
        if configs is not None or not use_cache:
            return self._build(mode, n, t, horizon, configs, workers)
        key: CacheKey = (mode.value, n, t, horizon)
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self._hits += 1
                obs.count("system_cache_hits")
                return cached
            self._misses += 1
            obs.count("system_cache_misses")
        with trace.span(
            "provider.get", mode=mode.value, n=n, t=t, horizon=horizon
        ) as lookup_span:
            system = self._load_from_disk(key, mode, n, t, horizon)
            if system is None:
                lookup_span.set("source", "build")
                system = self._build(mode, n, t, horizon, None, workers)
                self._store_to_disk(key, system)
            else:
                lookup_span.set("source", "disk")
        self._remember(key, system)
        return system

    def extend(
        self, mode: FailureMode, n: int, t: int, horizon: int
    ) -> System:
        """The cell's system, grown incrementally from a shallower cell.

        Scans horizons ``horizon-1 .. 1`` for the deepest available base —
        the in-memory LRU first, then a current-version disk file — and
        extends it round by round through
        :func:`~repro.model.system.extend_system`, which is identical to a
        fresh build but pays only one new round (plus an amortized prefix
        remap) per step.  Every intermediate horizon is remembered in the
        LRU, so a streaming monitor advancing one round at a time always
        extends from the previous round.  Only the target cell is written
        to disk.  With no shallower cell cached this degrades to
        :meth:`get`.
        """
        key: CacheKey = (mode.value, n, t, horizon)
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self._hits += 1
                obs.count("system_cache_hits")
                return cached
        base: Optional[System] = None
        base_horizon = 0
        for h0 in range(horizon - 1, 0, -1):
            base_key: CacheKey = (mode.value, n, t, h0)
            with self._lock:
                base = self._memory.get(base_key)
                if base is not None:
                    self._memory.move_to_end(base_key)
            if base is not None:
                base_horizon = h0
                break
            if self.has_current_cell(mode, n, t, h0):
                base = self.get(mode, n, t, h0)
                base_horizon = h0
                break
        if base is None:
            return self.get(mode, n, t, horizon)
        with self._lock:
            self._misses += 1
            obs.count("system_cache_misses")
        with trace.span(
            "provider.extend",
            mode=mode.value,
            n=n,
            t=t,
            horizon=horizon,
            base_horizon=base_horizon,
        ):
            system = base
            for next_horizon in range(base_horizon + 1, horizon + 1):
                adversary = exhaustive_adversary(mode, n, t, next_horizon)
                system = extend_system(system, adversary)
                obs.count("system_extends")
                self._remember((mode.value, n, t, next_horizon), system)
            self._store_to_disk(key, system)
        return system

    def _build(
        self,
        mode: FailureMode,
        n: int,
        t: int,
        horizon: int,
        configs: Optional[Iterable[InitialConfiguration]],
        workers: Optional[int],
    ) -> System:
        adversary = exhaustive_adversary(mode, n, t, horizon)
        return build_system(adversary, configs=configs, workers=workers)

    def _remember(self, key: CacheKey, system: System) -> None:
        with self._lock:
            self._memory[key] = system
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)
                self._evictions += 1
                obs.count("system_cache_evictions")

    def _remember_arrays(self, key: CacheKey, arrays) -> None:
        with self._lock:
            self._arrays_memory[key] = arrays
            self._arrays_memory.move_to_end(key)
            while len(self._arrays_memory) > self.max_arrays_entries:
                self._arrays_memory.popitem(last=False)
                self._arrays_evictions += 1
                obs.count("arrays_cache_evictions")

    # -- disk layer --------------------------------------------------------

    def _load_from_disk(
        self, key: CacheKey, mode: FailureMode, n: int, t: int, horizon: int
    ) -> Optional[System]:
        if not self.disk_enabled:
            return None
        system = self._load_pickle(key, mode, n, t, horizon)
        if system is not None:
            self._disk_hits += 1
            obs.count("disk_cache_hits")
            return system
        path = self._cache_path(key)
        if not os.path.exists(path):
            self._disk_misses += 1
            obs.count("disk_cache_misses")
            return None
        try:
            with obs.stage("disk_cache_load"):
                from ..io.system_codec import load_system

                system = load_system(path)
            if (system.n, system.t, system.horizon) != (n, t, horizon) or (
                system.mode is not mode
            ):
                raise ConfigurationError(
                    f"cache file {path} holds a different system"
                )
        except Exception:
            # Corrupted, truncated or mismatched file: treat as a miss and
            # let the rebuild overwrite it.
            self._disk_misses += 1
            obs.count("disk_cache_misses")
            return None
        self._disk_hits += 1
        obs.count("disk_cache_hits")
        # Backfill the fast sidecar so the next process skips the replay.
        self._store_pickle(key, system)
        return system

    def _load_pickle(
        self, key: CacheKey, mode: FailureMode, n: int, t: int, horizon: int
    ) -> Optional[System]:
        """Try the fast sidecar; any problem degrades to the JSON layer."""
        if not self.pickle_enabled:
            return None
        path = self._pickle_path(key)
        if not os.path.exists(path):
            return None
        try:
            with obs.stage("disk_cache_load"):
                from ..io.system_codec import load_system_pickle

                system = load_system_pickle(path)
            if (system.n, system.t, system.horizon) != (n, t, horizon) or (
                system.mode is not mode
            ):
                raise ConfigurationError(
                    f"pickle sidecar {path} holds a different system"
                )
        except Exception:
            # A sidecar that fails to load (truncated by a crashed run,
            # or holding the wrong system) would otherwise linger forever:
            # _store_pickle early-returns when the path exists, so it was
            # never repaired.  Delete it here so the next store — the JSON
            # backfill a few frames up, or the next fresh build — rewrites
            # a good one.
            try:
                os.unlink(path)
                obs.count("pickle_cache_repairs")
            except OSError:
                pass
            return None
        obs.count("pickle_cache_hits")
        return system

    def _store_pickle(self, key: CacheKey, system: System) -> None:
        if not self.pickle_enabled:
            return
        path = self._pickle_path(key)
        if os.path.exists(path):
            return
        try:
            with obs.stage("disk_cache_store"):
                os.makedirs(self.cache_dir, exist_ok=True)
                fd, temp_path = tempfile.mkstemp(
                    dir=self.cache_dir, suffix=".tmp"
                )
                os.close(fd)
                try:
                    from ..io.system_codec import dump_system_pickle

                    dump_system_pickle(system, temp_path)
                    os.replace(temp_path, path)
                finally:
                    if os.path.exists(temp_path):
                        os.unlink(temp_path)
        except OSError:
            pass

    def _store_to_disk(self, key: CacheKey, system: System) -> None:
        if not self.disk_enabled:
            return
        path = self._cache_path(key)
        try:
            with obs.stage("disk_cache_store"):
                os.makedirs(self.cache_dir, exist_ok=True)
                fd, temp_path = tempfile.mkstemp(
                    dir=self.cache_dir, suffix=".tmp"
                )
                os.close(fd)
                try:
                    from ..io.system_codec import dump_system

                    dump_system(system, temp_path)
                    os.replace(temp_path, path)
                finally:
                    if os.path.exists(temp_path):
                        os.unlink(temp_path)
            self._store_pickle(key, system)
            self._prune_stale(
                key,
                keep={
                    os.path.basename(path),
                    os.path.basename(self._pickle_path(key)),
                    os.path.basename(self._arrays_path(key)),
                },
            )
        except OSError:
            # A read-only or full filesystem must never break enumeration.
            pass

    def _prune_stale(self, key: CacheKey, *, keep) -> None:
        """Delete superseded cache files of the same parameter cell.

        Version-stamped filenames mean a codec or library bump leaves the
        previous stamp's file behind forever; after a successful store the
        newly written files are authoritative, so any sibling with the same
        ``(mode, n, t, horizon)`` prefix but a different version suffix —
        JSON payload or pickle sidecar — is garbage and is removed here.
        """
        if isinstance(keep, str):
            keep = {keep}
        prefix = self._cell_prefix(key)
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return
        for name in names:
            if name in keep:
                continue
            if not name.startswith(prefix) or not (
                name.endswith(".json.gz")
                or name.endswith(".pickle")
                or name.endswith(".npz")
            ):
                continue
            try:
                os.unlink(os.path.join(self.cache_dir, name))
            except OSError:
                continue
            self._disk_prunes += 1
            obs.count("disk_cache_prunes")

    # -- introspection -----------------------------------------------------

    def cache_info(self) -> Dict[str, object]:
        """Hit/miss/size statistics for both cache layers."""
        with self._lock:
            info = {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._memory),
                "max_size": self.max_memory_entries,
                "evictions": self._evictions,
                "arrays_size": len(self._arrays_memory),
                "arrays_max_size": self.max_arrays_entries,
                "arrays_evictions": self._arrays_evictions,
                "disk_hits": self._disk_hits,
                "disk_misses": self._disk_misses,
                "disk_prunes": self._disk_prunes,
                "keys": list(self._memory.keys()),
            }
        info["disk_stale"] = sum(
            1 for entry in self.disk_entries() if entry["stale"]
        )
        info["disk_enabled"] = self.disk_enabled
        info["cache_dir"] = self.cache_dir
        return info

    def disk_entries(self) -> List[Dict[str, object]]:
        """The on-disk cache inventory.

        Each entry carries the file name, its size in bytes, and a
        ``stale`` flag — true when the file's version suffix differs from
        the current codec/library stamp (it will never be read again, only
        pruned on the next store into its cell).
        """
        entries: List[Dict[str, object]] = []
        if not os.path.isdir(self.cache_dir):
            return entries
        current = {
            ".json.gz": self._current_suffix(),
            ".pickle": self._pickle_suffix(),
            ".npz": self._arrays_suffix(),
        }
        for name in sorted(os.listdir(self.cache_dir)):
            extension = next(
                (ext for ext in current if name.endswith(ext)), None
            )
            if extension is None:
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            entries.append(
                {
                    "file": name,
                    "bytes": size,
                    "stale": name.startswith("system_")
                    and not name.endswith(current[extension]),
                }
            )
        return entries

    def clear(self, *, disk: bool = False) -> Dict[str, int]:
        """Drop cached systems; returns eviction statistics.

        Args:
            disk: Also delete the on-disk cache files.

        Returns:
            ``{"evicted": ..., "arrays_evicted": ..., "disk_files_removed":
            ...}`` — how many in-memory systems, in-memory array
            projections and disk files were dropped by this call.
        """
        with self._lock:
            evicted = len(self._memory)
            self._memory.clear()
            self._evictions += evicted
            arrays_evicted = len(self._arrays_memory)
            self._arrays_memory.clear()
            self._arrays_evictions += arrays_evicted
        removed = 0
        if disk and os.path.isdir(self.cache_dir):
            for entry in self.disk_entries():
                try:
                    os.unlink(os.path.join(self.cache_dir, str(entry["file"])))
                    removed += 1
                except OSError:
                    pass
        return {
            "evicted": evicted,
            "arrays_evicted": arrays_evicted,
            "disk_files_removed": removed,
        }


#: The process-wide provider used by :mod:`repro.model.builder`.
PROVIDER = SystemProvider()


def get_provider() -> SystemProvider:
    """The process-wide :class:`SystemProvider`."""
    return PROVIDER
