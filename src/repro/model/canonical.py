"""Cross-mode encodings: crash failures as a special case of omissions.

Within a bounded horizon, a crash in round ``k`` that delivers to ``R`` is
*observationally identical* to a sending-omission behaviour that omits the
complement of ``R`` in round ``k`` and everything afterwards.  This module
makes that inclusion executable:

* :func:`crash_as_omission` / :func:`pattern_as_omission` — the encoding;
* :func:`embed_crash_patterns` — lift a crash adversary's patterns into
  omission form.

Two uses.  First, consistency testing: the simulator and the run builder
must produce byte-identical runs for a pattern and its encoding (the test
suite checks this property-based).  Second, the conceptual point the paper
makes when moving between the modes: every crash *run* is an omission run,
but the crash *system* is a strict subset of the omission system — which is
precisely why knowledge (and hence optimal protocols: Theorem 6.1 vs.
Proposition 6.3) differs so sharply between the modes even though the runs
embed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import ConfigurationError
from .failures import (
    CrashBehavior,
    FailurePattern,
    OmissionBehavior,
    ProcessorId,
)


def crash_as_omission(
    behavior: CrashBehavior, n: int, horizon: int, processor: ProcessorId
) -> OmissionBehavior:
    """Encode a crash behaviour as an observationally identical sending-
    omission behaviour, valid for runs of length *horizon*."""
    others = [p for p in range(n) if p != processor]
    omissions: Dict[int, List[ProcessorId]] = {}
    crash_round = behavior.crash_round
    if crash_round <= horizon:
        blocked = [p for p in others if p not in behavior.receivers]
        if blocked:
            omissions[crash_round] = blocked
        for round_number in range(crash_round + 1, horizon + 1):
            omissions[round_number] = list(others)
    return OmissionBehavior(omissions)


def pattern_as_omission(
    pattern: FailurePattern, n: int, horizon: int
) -> FailurePattern:
    """Encode every crash behaviour of a pattern into omission form.

    Non-crash behaviours pass through unchanged; mixed patterns are
    rejected (the encoding is only defined from the crash mode).
    """
    behaviors = {}
    for processor, behavior in pattern.behaviors:
        if isinstance(behavior, CrashBehavior):
            behaviors[processor] = crash_as_omission(
                behavior, n, horizon, processor
            )
        elif isinstance(behavior, OmissionBehavior):
            behaviors[processor] = behavior
        else:
            raise ConfigurationError(
                f"cannot encode behaviour {behavior!r} as a sending "
                "omission"
            )
    return FailurePattern(behaviors)


def embed_crash_patterns(
    patterns: Iterable[FailurePattern], n: int, horizon: int
) -> List[FailurePattern]:
    """Encode a crash pattern family into the omission mode, deduplicated.

    Distinct crash behaviours can collapse to one omission behaviour at a
    given horizon (e.g. "crash at ``horizon`` delivering to all" and
    "nonfaulty" — though canonical enumerators never emit the former), so
    the result is deduplicated while preserving first-seen order.
    """
    seen = set()
    result: List[FailurePattern] = []
    for pattern in patterns:
        encoded = pattern_as_omission(pattern, n, horizon)
        if encoded not in seen:
            seen.add(encoded)
            result.append(encoded)
    return result
