"""Failure modes, faulty behaviours and failure patterns.

This module implements Section 2.1 and 2.3 of the paper:

* **Crash failures** — a faulty processor obeys its protocol up to some round
  ``k``, sends an arbitrary subset of its required round-``k`` messages, and
  is silent in every later round.
* **(Sending-)omission failures** — a faulty processor obeys its protocol
  except that in each round it may omit an arbitrary subset of the messages
  it is required to send.  It still *receives* everything addressed to it.

A :class:`FailurePattern` records the faulty behaviour of every processor
that fails in a run; together with an initial configuration and a protocol it
uniquely determines the run (paper, Section 2.3).  Processors absent from the
pattern are *nonfaulty throughout the run* — the paper's chosen reading of
"nonfaulty" for EBA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..errors import ConfigurationError

ProcessorId = int


class FailureMode(Enum):
    """Failure modes: the paper's two, plus the [PT86] extensions.

    ``CRASH`` and ``OMISSION`` (= *sending* omissions) are the modes the
    paper analyzes.  ``RECEIVE_OMISSION`` (a faulty processor may fail to
    *receive* arbitrary messages) and ``GENERAL_OMISSION`` (both directions)
    are the Perry-Toueg modes the paper explicitly sets aside (Section 2.1);
    the simulator and adversaries support them so the ablation experiment
    E15 can measure which guarantees survive outside the analyzed modes.
    """

    CRASH = "crash"
    OMISSION = "omission"
    RECEIVE_OMISSION = "receive-omission"
    GENERAL_OMISSION = "general-omission"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CrashBehavior:
    """A crash failure: obey the protocol, then die.

    Attributes:
        crash_round: The round ``k >= 1`` in which the processor crashes.  It
            obeys its protocol in all rounds ``< k`` and sends nothing in any
            round ``> k``.
        receivers: The subset of processors that still receive the crashing
            processor's round-``k`` message.  The paper allows an arbitrary
            (not necessarily strict) subset; our canonical enumerators use
            strict subsets only, because "crash in round ``k`` delivering to
            everyone" is observationally identical to "crash in round
            ``k + 1`` delivering to no one".
    """

    crash_round: int
    receivers: FrozenSet[ProcessorId]

    def __post_init__(self) -> None:
        if self.crash_round < 1:
            raise ConfigurationError(
                f"crash round must be >= 1, got {self.crash_round}"
            )
        object.__setattr__(self, "receivers", frozenset(self.receivers))

    def sends_to(self, receiver: ProcessorId, round_number: int) -> bool:
        """Whether the round-*round_number* message to *receiver* is sent."""
        if round_number < self.crash_round:
            return True
        if round_number == self.crash_round:
            return receiver in self.receivers
        return False

    def receives_from(self, sender: ProcessorId, round_number: int) -> bool:
        """Crash failures never drop incoming messages (the post-crash
        state is unobservable anyway)."""
        return True

    def is_visible_within(self, horizon: int, n: int, sender: ProcessorId) -> bool:
        """Whether this behaviour causes any omission within *horizon* rounds.

        A crash scheduled after the horizon (or one that delivers its full
        final round exactly at the horizon) is indistinguishable from being
        nonfaulty in any run truncated at *horizon*.
        """
        others = n - 1
        if self.crash_round > horizon:
            return False
        if self.crash_round == horizon:
            delivered = len(self.receivers - {sender})
            return delivered < others
        return True


@dataclass(frozen=True)
class OmissionBehavior:
    """A sending-omission failure: drop selected messages, stay alive.

    Attributes:
        omissions: Maps a round number to the set of destination processors
            whose message is omitted in that round.  Rounds not present omit
            nothing.  Stored canonically as a sorted tuple of
            ``(round, frozenset)`` pairs with empty sets dropped, so equal
            behaviours compare and hash equal.
    """

    omissions: Tuple[Tuple[int, FrozenSet[ProcessorId]], ...]

    def __init__(
        self, omissions: Mapping[int, Iterable[ProcessorId]] | Iterable[Tuple[int, Iterable[ProcessorId]]]
    ) -> None:
        if isinstance(omissions, Mapping):
            items = omissions.items()
        else:
            items = list(omissions)
        canonical: Dict[int, FrozenSet[ProcessorId]] = {}
        for round_number, receivers in items:
            if round_number < 1:
                raise ConfigurationError(
                    f"omission round must be >= 1, got {round_number}"
                )
            receivers = frozenset(receivers)
            if round_number in canonical:
                raise ConfigurationError(
                    f"duplicate omission entry for round {round_number}"
                )
            if receivers:
                canonical[round_number] = receivers
        object.__setattr__(
            self,
            "omissions",
            tuple(sorted(canonical.items())),
        )

    def omitted(self, round_number: int) -> FrozenSet[ProcessorId]:
        """The set of destinations omitted in *round_number*."""
        for entry_round, receivers in self.omissions:
            if entry_round == round_number:
                return receivers
        return frozenset()

    def sends_to(self, receiver: ProcessorId, round_number: int) -> bool:
        """Whether the round-*round_number* message to *receiver* is sent."""
        return receiver not in self.omitted(round_number)

    def receives_from(self, sender: ProcessorId, round_number: int) -> bool:
        """Sending-omission failures receive everything (paper, §2.1)."""
        return True

    def is_visible_within(self, horizon: int, n: int, sender: ProcessorId) -> bool:
        """Whether any omission actually lands within *horizon* rounds."""
        for entry_round, receivers in self.omissions:
            if entry_round <= horizon and (receivers - {sender}):
                return True
        return False


@dataclass(frozen=True)
class ReceiveOmissionBehavior:
    """A receive-omission failure [PT86]: drop selected *incoming* messages.

    Attributes:
        omissions: Maps a round number to the set of *senders* whose
            message the faulty processor fails to receive in that round.
            Canonicalized like :class:`OmissionBehavior`.
    """

    omissions: Tuple[Tuple[int, FrozenSet[ProcessorId]], ...]

    def __init__(
        self,
        omissions: Mapping[int, Iterable[ProcessorId]]
        | Iterable[Tuple[int, Iterable[ProcessorId]]],
    ) -> None:
        canonical = _canonical_omissions(omissions)
        object.__setattr__(self, "omissions", canonical)

    def missed(self, round_number: int) -> FrozenSet[ProcessorId]:
        """The senders whose round-*round_number* message is not received."""
        for entry_round, senders in self.omissions:
            if entry_round == round_number:
                return senders
        return frozenset()

    def sends_to(self, receiver: ProcessorId, round_number: int) -> bool:
        """Receive-omission processors send everything."""
        return True

    def receives_from(self, sender: ProcessorId, round_number: int) -> bool:
        """Whether the round-*round_number* message from *sender* arrives."""
        return sender not in self.missed(round_number)

    def is_visible_within(self, horizon: int, n: int, owner: ProcessorId) -> bool:
        """Whether any receive omission lands within *horizon* rounds.

        Note: a receive omission is only "visible" indirectly — through the
        faulty processor's subsequent (incomplete) relays — but it is a
        genuine deviation, so any in-horizon miss counts.
        """
        for entry_round, senders in self.omissions:
            if entry_round <= horizon and (senders - {owner}):
                return True
        return False


@dataclass(frozen=True)
class GeneralOmissionBehavior:
    """A general-omission failure [PT86]: drop messages in both directions.

    Attributes:
        send_omissions: round -> destinations whose outgoing message is
            dropped.
        receive_omissions: round -> senders whose incoming message is
            dropped.
    """

    send_omissions: Tuple[Tuple[int, FrozenSet[ProcessorId]], ...]
    receive_omissions: Tuple[Tuple[int, FrozenSet[ProcessorId]], ...]

    def __init__(
        self,
        send_omissions: Mapping[int, Iterable[ProcessorId]]
        | Iterable[Tuple[int, Iterable[ProcessorId]]] = (),
        receive_omissions: Mapping[int, Iterable[ProcessorId]]
        | Iterable[Tuple[int, Iterable[ProcessorId]]] = (),
    ) -> None:
        object.__setattr__(
            self, "send_omissions", _canonical_omissions(send_omissions)
        )
        object.__setattr__(
            self, "receive_omissions", _canonical_omissions(receive_omissions)
        )

    def _lookup(
        self,
        entries: Tuple[Tuple[int, FrozenSet[ProcessorId]], ...],
        round_number: int,
    ) -> FrozenSet[ProcessorId]:
        for entry_round, processors in entries:
            if entry_round == round_number:
                return processors
        return frozenset()

    def sends_to(self, receiver: ProcessorId, round_number: int) -> bool:
        return receiver not in self._lookup(self.send_omissions, round_number)

    def receives_from(self, sender: ProcessorId, round_number: int) -> bool:
        return sender not in self._lookup(
            self.receive_omissions, round_number
        )

    def is_visible_within(self, horizon: int, n: int, owner: ProcessorId) -> bool:
        for entries in (self.send_omissions, self.receive_omissions):
            for entry_round, processors in entries:
                if entry_round <= horizon and (processors - {owner}):
                    return True
        return False


def _canonical_omissions(
    omissions: Mapping[int, Iterable[ProcessorId]]
    | Iterable[Tuple[int, Iterable[ProcessorId]]],
) -> Tuple[Tuple[int, FrozenSet[ProcessorId]], ...]:
    """Sorted, empty-set-free canonical form shared by the omission
    behaviours."""
    if isinstance(omissions, Mapping):
        items = omissions.items()
    else:
        items = list(omissions)
    canonical: Dict[int, FrozenSet[ProcessorId]] = {}
    for round_number, processors in items:
        if round_number < 1:
            raise ConfigurationError(
                f"omission round must be >= 1, got {round_number}"
            )
        if round_number in canonical:
            raise ConfigurationError(
                f"duplicate omission entry for round {round_number}"
            )
        processors = frozenset(processors)
        if processors:
            canonical[round_number] = processors
    return tuple(sorted(canonical.items()))


FaultyBehavior = object  # union documented below; kept loose for typing simplicity


def behavior_mode(behavior: FaultyBehavior) -> FailureMode:
    """Classify a behaviour object into its failure mode."""
    if isinstance(behavior, CrashBehavior):
        return FailureMode.CRASH
    if isinstance(behavior, OmissionBehavior):
        return FailureMode.OMISSION
    if isinstance(behavior, ReceiveOmissionBehavior):
        return FailureMode.RECEIVE_OMISSION
    if isinstance(behavior, GeneralOmissionBehavior):
        return FailureMode.GENERAL_OMISSION
    raise ConfigurationError(f"unknown faulty behaviour: {behavior!r}")


@dataclass(frozen=True)
class FailurePattern:
    """The complete faulty behaviour of all processors that fail in a run.

    Attributes:
        behaviors: Maps each *faulty* processor to its behaviour.  Processors
            not listed are nonfaulty throughout the run.  Stored canonically
            as a sorted tuple for hashability.
    """

    behaviors: Tuple[Tuple[ProcessorId, FaultyBehavior], ...] = field(default=())

    def __init__(
        self,
        behaviors: Mapping[ProcessorId, FaultyBehavior]
        | Iterable[Tuple[ProcessorId, FaultyBehavior]] = (),
    ) -> None:
        if isinstance(behaviors, Mapping):
            items = list(behaviors.items())
        else:
            items = list(behaviors)
        seen = set()
        for processor, behavior in items:
            if processor in seen:
                raise ConfigurationError(
                    f"processor {processor} listed faulty twice"
                )
            seen.add(processor)
            behavior_mode(behavior)  # validates the behaviour type
        object.__setattr__(
            self, "behaviors", tuple(sorted(items, key=lambda kv: kv[0]))
        )

    @property
    def faulty(self) -> FrozenSet[ProcessorId]:
        """The set of processors that are faulty in this pattern."""
        return frozenset(processor for processor, _ in self.behaviors)

    def behavior_of(self, processor: ProcessorId) -> Optional[FaultyBehavior]:
        """The behaviour of *processor*, or ``None`` if it is nonfaulty."""
        for candidate, behavior in self.behaviors:
            if candidate == processor:
                return behavior
        return None

    def nonfaulty(self, n: int) -> FrozenSet[ProcessorId]:
        """The set of nonfaulty processors in an ``n``-processor system."""
        return frozenset(range(n)) - self.faulty

    def num_faulty(self) -> int:
        """How many processors fail under this pattern."""
        return len(self.behaviors)

    def delivered(
        self, sender: ProcessorId, receiver: ProcessorId, round_number: int
    ) -> bool:
        """Whether *sender*'s round-*round_number* message reaches *receiver*.

        A message arrives iff the sender's behaviour sends it **and** the
        receiver's behaviour receives it; nonfaulty processors do both
        unconditionally.  (Receive-side filtering only matters for the
        [PT86] extension modes — the paper's crash and sending-omission
        behaviours never drop incoming messages.)  Self-delivery is vacuous
        (a processor always knows its own state) and reported as ``True``.
        """
        if sender == receiver:
            return True
        sender_behavior = self.behavior_of(sender)
        if sender_behavior is not None and not sender_behavior.sends_to(
            receiver, round_number
        ):
            return False
        receiver_behavior = self.behavior_of(receiver)
        if receiver_behavior is not None and not receiver_behavior.receives_from(
            sender, round_number
        ):
            return False
        return True

    def validate(self, n: int, t: int) -> "FailurePattern":
        """Check this pattern against system parameters and return it.

        Raises:
            ConfigurationError: if more than ``t`` processors fail or a
                faulty processor id is outside ``range(n)``.
        """
        if self.num_faulty() > t:
            raise ConfigurationError(
                f"{self.num_faulty()} faulty processors but t={t}"
            )
        for processor, _ in self.behaviors:
            if not 0 <= processor < n:
                raise ConfigurationError(
                    f"faulty processor id {processor} outside range(0, {n})"
                )
        return self

    def mode(self) -> Optional[FailureMode]:
        """The failure mode of this pattern, ``None`` when failure-free.

        Mixed-mode patterns are rejected at construction time by
        :func:`make_pattern`; a pattern built directly from behaviours of
        different modes reports the mode of its first behaviour.
        """
        if not self.behaviors:
            return None
        return behavior_mode(self.behaviors[0][1])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.behaviors:
            return "FailurePattern(failure-free)"
        def entries(pairs):
            return ";".join(
                f"r{round_number}-{sorted(processors)}"
                for round_number, processors in pairs
            )

        parts = []
        for processor, behavior in self.behaviors:
            if isinstance(behavior, CrashBehavior):
                parts.append(
                    f"p{processor}:crash@r{behavior.crash_round}"
                    f"->{sorted(behavior.receivers)}"
                )
            elif isinstance(behavior, OmissionBehavior):
                parts.append(f"p{processor}:omit[{entries(behavior.omissions)}]")
            elif isinstance(behavior, ReceiveOmissionBehavior):
                parts.append(
                    f"p{processor}:recv-omit[{entries(behavior.omissions)}]"
                )
            else:
                parts.append(
                    f"p{processor}:gen-omit["
                    f"send:{entries(behavior.send_omissions)}|"
                    f"recv:{entries(behavior.receive_omissions)}]"
                )
        return f"FailurePattern({', '.join(parts)})"


#: The failure-free pattern, shared for convenience.
NO_FAILURES = FailurePattern(())


def make_pattern(
    behaviors: Mapping[ProcessorId, FaultyBehavior],
    *,
    n: int,
    t: int,
    mode: Optional[FailureMode] = None,
) -> FailurePattern:
    """Build and fully validate a failure pattern.

    Args:
        behaviors: Faulty processor -> behaviour mapping.
        n: Number of processors in the system.
        t: Maximum number of faulty processors.
        mode: If given, every behaviour must belong to this failure mode.

    Returns:
        The validated :class:`FailurePattern`.
    """
    pattern = FailurePattern(behaviors).validate(n, t)
    if mode is not None:
        for _, behavior in pattern.behaviors:
            if behavior_mode(behavior) is not mode:
                raise ConfigurationError(
                    f"behaviour {behavior!r} is not a {mode} behaviour"
                )
    return pattern


def _truncate_behavior(
    behavior: FaultyBehavior, horizon: int
) -> FaultyBehavior:
    """*behavior* with every entry after *horizon* removed."""
    if isinstance(behavior, CrashBehavior):
        return behavior
    if isinstance(behavior, OmissionBehavior):
        return OmissionBehavior(
            [(r, s) for r, s in behavior.omissions if r <= horizon]
        )
    if isinstance(behavior, ReceiveOmissionBehavior):
        return ReceiveOmissionBehavior(
            [(r, s) for r, s in behavior.omissions if r <= horizon]
        )
    if isinstance(behavior, GeneralOmissionBehavior):
        return GeneralOmissionBehavior(
            [(r, s) for r, s in behavior.send_omissions if r <= horizon],
            [(r, s) for r, s in behavior.receive_omissions if r <= horizon],
        )
    raise ConfigurationError(f"unknown faulty behaviour: {behavior!r}")


def truncate_pattern(
    pattern: FailurePattern, horizon: int, n: int
) -> FailurePattern:
    """Restrict *pattern* to its observable prefix of length *horizon*.

    Deliveries in rounds ``1..horizon`` are identical under the original
    and the truncated pattern, and processors whose behaviour causes no
    omission within the horizon (``is_visible_within``) are dropped
    entirely — so truncating a canonical horizon-``h+1`` adversary pattern
    always lands on a canonical horizon-``h`` pattern (or ``NO_FAILURES``).
    This is the bridge incremental system extension walks: the horizon-``h``
    run a new scenario shares its first ``h`` rounds with is the run of the
    truncated pattern.
    """
    surviving = []
    for processor, behavior in pattern.behaviors:
        if not behavior.is_visible_within(horizon, n, processor):
            continue
        surviving.append((processor, _truncate_behavior(behavior, horizon)))
    if not surviving:
        return NO_FAILURES
    return FailurePattern(surviving)
