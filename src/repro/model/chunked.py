"""Chunked (limb-array) evaluation kernel.

The third :class:`~repro.model.system.TruthAssignment` representation:
the point layout of the bitset kernel (point ``(run, time)`` is bit
``run * width + time``), split into fixed-width 64-bit limbs instead of
one arbitrary-precision integer.  Boolean algebra is then O(limbs
touched) — elementwise word operations over a flat buffer — instead of
O(total mask length) big-int arithmetic, and the knowledge sweeps become
*sparse* per-state-group scans: each distinct local state touches only
the limbs its occurrence points live in, so K/B/E stay one subset test
per state group at any system size.  This is what makes the huge
omission enumerations (~1.2M points, Proposition 6.3) run on a packed
fast path at all — the single-integer bitset kernel degrades
quadratically there and the reference layout is pure-Python per point.

Two interchangeable limb backends:

* **numpy** (auto-detected at import; requires ``numpy >= 2.0`` for
  ``np.bitwise_count``) — limbs are one ``uint64`` ndarray; group sweeps
  are vectorized gather / segmented-reduce (``np.bitwise_or.reduceat``)
  / scatter (``np.bitwise_or.at``) passes over a flattened
  ``(limb index, limb value)`` entry table;
* **pure Python** — limbs are a plain list of ints; same algorithms,
  scalar loops.  Selected when numpy is unavailable or when the
  ``REPRO_CHUNKED_BACKEND`` environment variable is set to ``python``
  (tests use :func:`force_python_backend`).

On top of the numpy backend sits an optional **matrix mode**
(``REPRO_CHUNKED_BACKEND=matrix`` requests it explicitly; the fused
planner uses it whenever :func:`matrix_supported`): F formula buffers
stack into one ``(F, limbs)`` uint64 matrix and the ``*_many`` sweeps
on :class:`ChunkedIndex` run all F knowledge tests — or all F fixpoints
in lockstep, sharing one dirty frontier per round — through a single
gather/segmented-reduce pass per processor.

The fixpoint evaluators (``C`` / ``C□`` / ``C◇``) run the same
downward iteration as the bitset kernel but carry a **dirty-limb
frontier** between iterations: the limbs the eliminated set (``delta``)
actually touches select candidate state groups through a lazily built
limb→groups map, so late iterations re-examine only groups whose points
changed instead of rescanning every state (the numpy backend switches to
one vectorized full-table pass when the frontier is wide, which is the
same work at lower constant factor).

Import order: this module imports :mod:`repro.model.system` (for the
:class:`TruthAssignment` base class); ``system`` only imports *this*
module lazily inside its kernel-dispatching factories, so there is no
cycle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Container, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs, trace
from ..errors import ConfigurationError
from .system import System, TruthAssignment
from .views import ViewId

LIMB_BITS = 64
LIMB_MASK = (1 << LIMB_BITS) - 1

#: Environment variable forcing the limb backend.  ``python`` / ``py`` /
#: ``list`` pins the pure-Python backend; ``matrix`` pins the numpy
#: backend *and* marks the batched ``(F, limbs)`` matrix sweeps as
#: explicitly requested (the fused planner then refuses to fall back
#: silently); anything else means auto (numpy when importable).
BACKEND_ENV = "REPRO_CHUNKED_BACKEND"

#: Env value requesting the 2-D limb-matrix mode explicitly.
MATRIX = "matrix"

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _numpy  # type: ignore
    if not hasattr(_numpy, "bitwise_count"):  # numpy < 2.0
        _numpy = None  # type: ignore[assignment]
except ImportError:  # pragma: no cover - numpy is baked into the image
    _numpy = None  # type: ignore[assignment]


def _backend_from_env():
    raw = os.environ.get(BACKEND_ENV, "").strip().lower()
    if raw in ("py", "python", "list"):
        return None
    return _numpy


#: The backend new limb buffers are built with (toggled by
#: :func:`force_python_backend`); per-buffer operations dispatch on the
#: buffer's own type, so existing values stay coherent across a toggle.
_active_numpy = _backend_from_env()


def backend_name() -> str:
    """``"numpy"`` or ``"python"`` — the backend new buffers use."""
    return "numpy" if _active_numpy is not None else "python"


def matrix_supported() -> bool:
    """True when batched ``(F, limbs)`` matrix sweeps are available.

    Matrix mode rides the numpy backend: the axis-agnostic limb helpers
    treat the *last* axis as the limb axis, so a stack of F formula
    buffers flows through the same gather/segmented-reduce passes as a
    single buffer.  Selection precedence mirrors the scalar backend:
    ``force_python_backend`` (and ``REPRO_CHUNKED_BACKEND=python``)
    disables it, ``REPRO_CHUNKED_BACKEND=matrix`` requests it
    explicitly, and otherwise it is available whenever numpy is.
    """
    return _active_numpy is not None


def matrix_requested() -> bool:
    """True when ``REPRO_CHUNKED_BACKEND=matrix`` insists on matrix mode."""
    raw = os.environ.get(BACKEND_ENV, "").strip().lower()
    return raw == MATRIX


@contextmanager
def force_python_backend() -> Iterator[None]:
    """Build chunked values with the pure-Python limb backend (tests).

    Only affects buffers created inside the block; indexes built before
    entering keep their backend, so tests should build fresh systems
    inside the block when they need end-to-end pure-Python coverage.
    """
    global _active_numpy
    saved = _active_numpy
    _active_numpy = None
    try:
        yield
    finally:
        _active_numpy = saved


# -- limb-buffer primitives ---------------------------------------------------
#
# Buffers are either a plain list of ints (pure-Python backend) or one
# uint64 ndarray (numpy backend).  Every helper dispatches on the
# *buffer's* type so values from both backends behave, whichever backend
# is currently active.

def _is_py(limbs) -> bool:
    return isinstance(limbs, list)


def _nlimbs(num_bits: int) -> int:
    return max(1, (num_bits + LIMB_BITS - 1) // LIMB_BITS)


def _tail_mask(num_bits: int) -> int:
    rem = num_bits % LIMB_BITS
    return LIMB_MASK if rem == 0 else (1 << rem) - 1


def _freeze(limbs: List[int]):
    """Adopt a built-as-list buffer into the active backend."""
    if _active_numpy is not None:
        return _active_numpy.array(limbs, dtype=_active_numpy.uint64)
    return limbs


def _coerce(limbs, to_python: bool):
    """Convert a buffer to the requested backend (no-op when it matches)."""
    if to_python:
        return limbs if _is_py(limbs) else [int(x) for x in limbs]
    if _is_py(limbs):
        return _numpy.array(limbs, dtype=_numpy.uint64)
    return limbs


def _and(a, b):
    if _is_py(a):
        return [x & y for x, y in zip(a, b)]
    return a & b


def _or(a, b):
    if _is_py(a):
        return [x | y for x, y in zip(a, b)]
    return a | b


def _andnot(a, b):
    """``a & ~b`` limbwise (stays within the tail because ``a`` does)."""
    if _is_py(a):
        return [x & ~y for x, y in zip(a, b)]
    return a & ~b


def _not(a, tail: int):
    """Complement within the valid bit range (tail limb masked).

    Axis-agnostic on the numpy branch: the last axis is the limb axis,
    so ``(F, limbs)`` matrix stacks complement row-wise.
    """
    if _is_py(a):
        out = [~x & LIMB_MASK for x in a]
        out[-1] &= tail
        return out
    out = ~a
    out[..., -1] &= _numpy.uint64(tail)
    return out


def _eq(a, b) -> bool:
    if _is_py(a):
        return a == b
    return bool((a == b).all())


def _any(a) -> bool:
    if _is_py(a):
        return any(a)
    return bool(a.any())


def _popcount(a) -> int:
    if _is_py(a):
        return sum(x.bit_count() for x in a)
    return int(_numpy.bitwise_count(a).sum(dtype=_numpy.int64))


def _shift_down(a, k: int):
    """Limb buffer logically shifted toward bit 0 by *k* bits.

    Axis-agnostic on the numpy branch (last axis = limb axis), so
    matrix stacks shift every row in one pass.
    """
    if _is_py(a):
        n = len(a)
        q, r = divmod(k, LIMB_BITS)
        out = [0] * n
        if q < n:
            if r == 0:
                out[: n - q] = a[q:]
            else:
                inv = LIMB_BITS - r
                for i in range(n - q):
                    lo = a[i + q] >> r
                    hi = (a[i + q + 1] << inv) & LIMB_MASK if i + q + 1 < n else 0
                    out[i] = lo | hi
        return out
    np = _numpy
    n = a.shape[-1]
    q, r = divmod(k, LIMB_BITS)
    out = np.zeros(a.shape, np.uint64)
    if q < n:
        if r == 0:
            out[..., : n - q] = a[..., q:]
        else:
            out[..., : n - q] = a[..., q:] >> np.uint64(r)
            if q + 1 < n:
                out[..., : n - q - 1] |= a[..., q + 1 :] << np.uint64(
                    LIMB_BITS - r
                )
    return out


def _shift_up(a, k: int, tail: int):
    """Limb buffer shifted away from bit 0 by *k* bits, tail-masked.

    Axis-agnostic on the numpy branch (last axis = limb axis).
    """
    if _is_py(a):
        n = len(a)
        q, r = divmod(k, LIMB_BITS)
        out = [0] * n
        if q < n:
            if r == 0:
                out[q:] = a[: n - q]
            else:
                inv = LIMB_BITS - r
                for i in range(q, n):
                    lo = (a[i - q] << r) & LIMB_MASK
                    hi = a[i - q - 1] >> inv if i - q - 1 >= 0 else 0
                    out[i] = lo | hi
        out[-1] &= tail
        return out
    np = _numpy
    n = a.shape[-1]
    q, r = divmod(k, LIMB_BITS)
    out = np.zeros(a.shape, np.uint64)
    if q < n:
        if r == 0:
            out[..., q:] = a[..., : n - q]
        else:
            out[..., q:] = a[..., : n - q] << np.uint64(r)
            if q + 1 < n:
                out[..., q + 1 :] |= a[..., : n - q - 1] >> np.uint64(
                    LIMB_BITS - r
                )
    out[..., -1] &= np.uint64(tail)
    return out


def _or_window(limbs: List[int], pos: int, bits: int) -> None:
    """OR an arbitrary-width bit window into a list buffer at *pos*."""
    i, off = divmod(pos, LIMB_BITS)
    bits <<= off
    while bits:
        limbs[i] |= bits & LIMB_MASK
        bits >>= LIMB_BITS
        i += 1


def _window_int(limbs, pos: int, width: int) -> int:
    """Extract a *width*-bit window starting at bit *pos* as an int."""
    i, off = divmod(pos, LIMB_BITS)
    acc = int(limbs[i]) >> off
    got = LIMB_BITS - off
    while got < width and i + 1 < len(limbs):
        i += 1
        acc |= int(limbs[i]) << got
        got += LIMB_BITS
    return acc & ((1 << width) - 1)


def _extract_windows(limbs, num_runs: int, width: int):
    """Vectorized per-run windows (numpy buffers, ``width <= 64``)."""
    np = _numpy
    pos = np.arange(num_runs, dtype=np.int64) * width
    idx = pos >> 6
    off = (pos & 63).astype(np.uint64)
    ext = np.zeros(len(limbs) + 1, np.uint64)
    ext[:-1] = limbs
    lo = ext[idx] >> off
    inv = (np.uint64(LIMB_BITS) - off) & np.uint64(63)
    hi = np.where(off == np.uint64(0), np.uint64(0), ext[idx + 1] << inv)
    win = lo | hi
    if width < LIMB_BITS:
        win &= np.uint64((1 << width) - 1)
    return win


def _pack_rows_to_limbs(
    rows: Sequence[Sequence[bool]], width: int, num_runs: int
) -> List[int]:
    """Pack per-run boolean rows into a list limb buffer."""
    limbs = [0] * _nlimbs(num_runs * width)
    pos = 0
    for row in rows:
        bits = 0
        for time, value in enumerate(row):
            if value:
                bits |= 1 << time
        if bits:
            _or_window(limbs, pos, bits)
        pos += width
    return limbs


class ChunkedAssignment(TruthAssignment):
    """Chunked-kernel truth assignment: one bit per point, 64-bit limbs.

    Same point layout as :class:`~repro.model.system.BitsetAssignment`
    (``(run, time)`` → bit ``run * width + time``), stored as a flat limb
    buffer.  Boolean algebra is elementwise over the limbs; the knowledge
    evaluators in :mod:`repro.knowledge.semantics` recognize this
    representation and dispatch to the :class:`ChunkedIndex` of the
    system.  Bits above ``num_runs * width`` are invariantly zero.
    """

    __slots__ = ("limbs", "num_runs", "width", "num_bits")

    def __init__(self, limbs, num_runs: int, width: int) -> None:
        self.limbs = limbs
        self.num_runs = num_runs
        self.width = width
        self.num_bits = num_runs * width

    # -- factories ---------------------------------------------------------

    @staticmethod
    def constant(system: "System", value: bool) -> "ChunkedAssignment":
        width = system.horizon + 1
        num_runs = len(system.runs)
        num_bits = num_runs * width
        if value:
            limbs = [LIMB_MASK] * _nlimbs(num_bits)
            limbs[-1] = _tail_mask(num_bits)
        else:
            limbs = [0] * _nlimbs(num_bits)
        return ChunkedAssignment(_freeze(limbs), num_runs, width)

    @staticmethod
    def from_rows(
        system: "System", rows: Sequence[Sequence[bool]]
    ) -> "ChunkedAssignment":
        width = system.horizon + 1
        num_runs = len(system.runs)
        return ChunkedAssignment(
            _freeze(_pack_rows_to_limbs(rows, width, num_runs)),
            num_runs,
            width,
        )

    @staticmethod
    def from_run_levels(
        system: "System", run_levels: Sequence[bool]
    ) -> "ChunkedAssignment":
        width = system.horizon + 1
        num_runs = len(system.runs)
        block = (1 << width) - 1
        limbs = [0] * _nlimbs(num_runs * width)
        for run_index, value in enumerate(run_levels):
            if value:
                _or_window(limbs, run_index * width, block)
        return ChunkedAssignment(_freeze(limbs), num_runs, width)

    def _replace(self, limbs) -> "ChunkedAssignment":
        """Same shape, different limb buffer."""
        clone = ChunkedAssignment.__new__(ChunkedAssignment)
        clone.limbs = limbs
        clone.num_runs = self.num_runs
        clone.width = self.width
        clone.num_bits = self.num_bits
        return clone

    # -- point access ------------------------------------------------------

    @property
    def values(self) -> List[List[bool]]:
        """Materialized per-run rows (compat with row-oriented readers)."""
        return self.to_rows()

    def at(self, run_index: int, time: int) -> bool:
        pos = run_index * self.width + time
        return bool((int(self.limbs[pos >> 6]) >> (pos & 63)) & 1)

    def count_true(self) -> int:
        return _popcount(self.limbs)

    def to_rows(self) -> List[List[bool]]:
        width = self.width
        rows = []
        for run_index in range(self.num_runs):
            bits = _window_int(self.limbs, run_index * width, width)
            rows.append([bool((bits >> time) & 1) for time in range(width)])
        return rows

    def run_levels(self) -> List[bool]:
        limbs = self.limbs
        if not _is_py(limbs) and self.width <= LIMB_BITS:
            win = _extract_windows(limbs, self.num_runs, self.width)
            return ((win & _numpy.uint64(1)) != 0).tolist()
        width = self.width
        return [
            bool((int(limbs[pos >> 6]) >> (pos & 63)) & 1)
            for pos in range(0, self.num_bits, width)
        ]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ChunkedAssignment):
            if self.num_runs != other.num_runs or self.width != other.width:
                return False
            mine = self.limbs
            return _eq(mine, _coerce(other.limbs, to_python=_is_py(mine)))
        if isinstance(other, TruthAssignment):
            return self.to_rows() == other.to_rows()
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - not hashed in practice
        return hash((tuple(int(x) for x in self.limbs), self.num_runs, self.width))

    # -- pointwise algebra -------------------------------------------------

    def _limbs_of(self, other: "TruthAssignment"):
        if isinstance(other, ChunkedAssignment):
            limbs = other.limbs
        else:
            limbs = _pack_rows_to_limbs(
                other.to_rows(), self.width, self.num_runs
            )
        return _coerce(limbs, to_python=_is_py(self.limbs))

    def negate(self) -> "ChunkedAssignment":
        return self._replace(_not(self.limbs, _tail_mask(self.num_bits)))

    def conjoin(self, other: "TruthAssignment") -> "ChunkedAssignment":
        return self._replace(_and(self.limbs, self._limbs_of(other)))

    def disjoin(self, other: "TruthAssignment") -> "ChunkedAssignment":
        return self._replace(_or(self.limbs, self._limbs_of(other)))

    def implies(self, other: "TruthAssignment") -> "ChunkedAssignment":
        tail = _tail_mask(self.num_bits)
        return self._replace(
            _or(_not(self.limbs, tail), self._limbs_of(other))
        )

    def is_valid(self) -> bool:
        return _popcount(self.limbs) == self.num_bits


class ChunkedIndex:
    """Limb-sliced same-state group index powering the chunked kernel.

    The geometric part (``col0``, limb shape) is built eagerly — it is
    all the temporal sweeps need; the group tables are built lazily on
    the first knowledge sweep (:meth:`_ensure_groups`), one python pass
    over the system's state index:

    * per processor, a flattened sparse entry table: ``_idx[p][k]`` is a
      limb index and ``_val[p][k]`` the limb's bits belonging to one
      state group; ``_starts[p]`` delimits the groups.  ``K_p φ`` is then
      one *sparse* subset test per group — only the limbs the group's
      points occupy are touched, and the numpy backend runs all groups
      of a processor in one gather/segmented-reduce/scatter pass;
    * ``group_views[p]`` / ``view_owner`` — the view behind each group,
      for decision-state extraction;
    * ``member_masks`` — per nonrigid-set cache key, the per-processor
      limb buffer of points where the processor is a member (memoized
      here by :mod:`repro.knowledge.semantics`);
    * a lazily built limb→groups map per processor, the *dirty-chunk
      frontier* index of :meth:`fixpoint`.
    """

    __slots__ = (
        "system",
        "num_runs",
        "width",
        "num_bits",
        "nlimbs",
        "tail",
        "run_block",
        "col0",
        "view_owner",
        "view_slot",
        "group_views",
        "member_masks",
        "_groups_built",
        "_idx",
        "_val",
        "_starts",
        "_rstarts",
        "_sizes",
        "_limb_groups_cache",
        "_native_starts",
        "fresh_limbs",
    )

    def __init__(self, system: "System") -> None:
        self.system = system
        width = system.horizon + 1
        num_runs = len(system.runs)
        self.num_runs = num_runs
        self.width = width
        self.num_bits = num_runs * width
        self.nlimbs = _nlimbs(self.num_bits)
        self.tail = _tail_mask(self.num_bits)
        self.run_block = (1 << width) - 1
        col0 = [0] * self.nlimbs
        for run_index in range(num_runs):
            pos = run_index * width
            col0[pos >> 6] |= 1 << (pos & 63)
        self.col0 = _freeze(col0)
        self.view_owner: Dict[ViewId, int] = {}
        self.view_slot: Dict[ViewId, Tuple[int, int]] = {}
        self.group_views: List[List[ViewId]] = [[] for _ in range(system.n)]
        self.member_masks: Dict[object, List[object]] = {}
        self._groups_built = False
        n = system.n
        self._idx: List[object] = [None] * n
        self._val: List[object] = [None] * n
        self._starts: List[List[int]] = [[] for _ in range(n)]
        self._rstarts: List[object] = [None] * n
        self._sizes: List[object] = [None] * n
        self._limb_groups_cache: List[Optional[Dict[int, List[int]]]] = (
            [None] * n
        )
        self._native_starts: List[object] = [None] * n
        #: When this index was produced by :meth:`extend_points`, the sorted
        #: limb indices containing the extension's new (time == horizon)
        #: points — the dirty-limb frontier seeded by one horizon step.
        self.fresh_limbs: Optional[List[int]] = None

    # -- shape helpers -----------------------------------------------------

    @property
    def _py(self) -> bool:
        return _is_py(self.col0)

    def _zeros(self):
        if self._py:
            return [0] * self.nlimbs
        return _numpy.zeros(self.nlimbs, _numpy.uint64)

    def _ones(self):
        limbs = [LIMB_MASK] * self.nlimbs
        limbs[-1] = self.tail
        if self._py:
            return limbs
        return _numpy.array(limbs, dtype=_numpy.uint64)

    def _adopt(self, limbs):
        """Coerce a limb buffer to this index's backend."""
        return _coerce(limbs, to_python=self._py)

    def wrap(self, limbs) -> ChunkedAssignment:
        """A :class:`ChunkedAssignment` of this system around *limbs*."""
        return ChunkedAssignment(limbs, self.num_runs, self.width)

    # -- group tables ------------------------------------------------------

    def _ensure_groups(self) -> None:
        if self._groups_built:
            return
        system = self.system
        with obs.stage("chunked_index"), trace.span(
            "chunked_index_groups", runs=self.num_runs
        ):
            width = self.width
            n = system.n
            idx_acc: List[List[int]] = [[] for _ in range(n)]
            val_acc: List[List[int]] = [[] for _ in range(n)]
            starts: List[List[int]] = [[0] for _ in range(n)]
            table = system.table
            for view, points in system._state_index.items():
                owner = table.info(view).processor
                acc: Dict[int, int] = {}
                for run_index, time in points:
                    pos = run_index * width + time
                    limb = pos >> 6
                    acc[limb] = acc.get(limb, 0) | (1 << (pos & 63))
                slot = len(self.group_views[owner])
                self.view_owner[view] = owner
                self.view_slot[view] = (owner, slot)
                self.group_views[owner].append(view)
                target_idx = idx_acc[owner]
                target_val = val_acc[owner]
                for limb in sorted(acc):
                    target_idx.append(limb)
                    target_val.append(acc[limb])
                starts[owner].append(len(target_idx))
            for p in range(n):
                # Group-table sweep size per processor: how many
                # (limb, mask) entries a full knowledge sweep visits.
                obs.observe("chunked_group_entries", len(idx_acc[p]))
                self._starts[p] = starts[p]
                if self._py:
                    self._idx[p] = idx_acc[p]
                    self._val[p] = val_acc[p]
                else:
                    np = _numpy
                    self._idx[p] = np.array(idx_acc[p], dtype=np.int64)
                    self._val[p] = np.array(val_acc[p], dtype=np.uint64)
                    self._rstarts[p] = np.array(
                        starts[p][:-1], dtype=np.int64
                    )
                    self._sizes[p] = np.diff(
                        np.array(starts[p], dtype=np.int64)
                    )
        self._groups_built = True

    def extend_points(self, extended: "System") -> "ChunkedIndex":
        """The index of *extended*, the one-round extension of this system.

        Growing the horizon changes ``width = horizon + 1``, which
        relocates **every** bit position (``run * width + time``), and the
        extension's scenario enumeration interleaves brand-new failure
        patterns among the old ones, permuting run indices — so the limb
        geometry and group tables cannot be widened in place; they are
        rebuilt in one pass over the extended system's state index
        (eagerly iff this index had already paid for its group tables,
        so a never-swept index stays lazy).  What the extension *does*
        carry over is the frontier: the limbs holding the new
        ``time == horizon`` points (``fresh_limbs``), exactly the dirty
        set one horizon step seeds into the sparse fixpoint machinery
        (:meth:`fixpoint`'s dirty-limb path), and the observability
        hook for how localized the delta is.
        """
        if extended.horizon != self.system.horizon + 1:
            raise ConfigurationError(
                f"extend_points: extended horizon {extended.horizon} is not "
                f"{self.system.horizon} + 1"
            )
        with trace.span(
            "chunked_extend_points", runs=len(extended.runs)
        ):
            new_index = ChunkedIndex(extended)
            if self._groups_built:
                new_index._ensure_groups()
            width = new_index.width
            fresh = sorted(
                {
                    (run_index * width + (width - 1)) >> 6
                    for run_index in range(new_index.num_runs)
                }
            )
            new_index.fresh_limbs = fresh
        obs.count("chunked_extends")
        obs.observe("chunked_extend_fresh_limbs", len(fresh))
        return new_index

    def _limb_groups(self, processor: int) -> Dict[int, List[int]]:
        """Lazily built limb→group-ids map (the frontier index)."""
        mapping = self._limb_groups_cache[processor]
        if mapping is None:
            self._ensure_groups()
            mapping = {}
            idx = self._idx[processor]
            starts = self._starts[processor]
            for g in range(len(starts) - 1):
                for k in range(starts[g], starts[g + 1]):
                    mapping.setdefault(int(idx[k]), []).append(g)
            self._limb_groups_cache[processor] = mapping
        return mapping

    # -- knowledge sweeps --------------------------------------------------

    def knows_limbs(self, processor: int, phi):
        """``K_i φ``: one sparse subset test per distinct state group."""
        self._ensure_groups()
        phi = self._adopt(phi)
        out = self._zeros()
        if self._py:
            idx = self._idx[processor]
            val = self._val[processor]
            starts = self._starts[processor]
            for g in range(len(starts) - 1):
                s, e = starts[g], starts[g + 1]
                ok = True
                for k in range(s, e):
                    if val[k] & ~phi[idx[k]]:
                        ok = False
                        break
                if ok:
                    for k in range(s, e):
                        out[idx[k]] |= val[k]
            return out
        np = _numpy
        idx = self._idx[processor]
        if idx.size == 0:
            return out
        val = self._val[processor]
        bad = (val & ~phi[idx]) != 0
        grp_bad = np.bitwise_or.reduceat(bad, self._rstarts[processor])
        if not grp_bad.all():
            sel = np.repeat(~grp_bad, self._sizes[processor])
            np.bitwise_or.at(out, idx[sel], val[sel])
        return out

    def believes_limbs(self, processor: int, pmask, phi):
        """``B_i^S φ``: subset test restricted to S-member points."""
        self._ensure_groups()
        phi = self._adopt(phi)
        pmask = self._adopt(pmask)
        out = self._zeros()
        if self._py:
            idx = self._idx[processor]
            val = self._val[processor]
            starts = self._starts[processor]
            for g in range(len(starts) - 1):
                s, e = starts[g], starts[g + 1]
                ok = True
                for k in range(s, e):
                    if (val[k] & pmask[idx[k]]) & ~phi[idx[k]]:
                        ok = False
                        break
                if ok:
                    for k in range(s, e):
                        out[idx[k]] |= val[k]
            return out
        np = _numpy
        idx = self._idx[processor]
        if idx.size == 0:
            return out
        val = self._val[processor]
        gathered = phi[idx]
        bad = ((val & pmask[idx]) & ~gathered) != 0
        grp_bad = np.bitwise_or.reduceat(bad, self._rstarts[processor])
        if not grp_bad.all():
            sel = np.repeat(~grp_bad, self._sizes[processor])
            np.bitwise_or.at(out, idx[sel], val[sel])
        return out

    def everyone_limbs(self, member_masks, phi):
        """``E_S φ`` (vacuously true where ``S`` is empty)."""
        bad_total = self._zeros()
        for processor in range(self.system.n):
            pmask = member_masks[processor]
            if not _any(pmask):
                continue
            belief = self.believes_limbs(processor, pmask, phi)
            bad_total = _or(
                bad_total, _and(pmask, _not(belief, self.tail))
            )
        return _not(bad_total, self.tail)

    # -- temporal sweeps ---------------------------------------------------

    def always_limbs(self, m):
        """``□`` column sweep: suffix-AND within each run's bit window."""
        column = _shift_up(self.col0, self.width - 1, self.tail)
        previous = _and(m, column)
        result = previous
        for _ in range(self.width - 1):
            column = _shift_down(column, 1)
            previous = _and(_and(m, column), _shift_down(previous, 1))
            result = _or(result, previous)
        return result

    def eventually_limbs(self, m):
        """``◇`` column sweep: suffix-OR within each run's bit window."""
        column = _shift_up(self.col0, self.width - 1, self.tail)
        previous = _and(m, column)
        result = previous
        for _ in range(self.width - 1):
            column = _shift_down(column, 1)
            previous = _and(column, _or(m, _shift_down(previous, 1)))
            result = _or(result, previous)
        return result

    def at_all_times_limbs(self, m):
        """``⊡``: fold all time columns onto col0, then broadcast."""
        folded = m
        for shift in range(1, self.width):
            folded = _and(folded, _shift_down(m, shift))
        return self.spread_run_levels(_and(folded, self.col0))

    def spread_run_levels(self, run_bits):
        """Broadcast a col0-aligned per-run bit across the run's window."""
        out = run_bits
        for shift in range(1, self.width):
            out = _or(out, _shift_up(run_bits, shift, self.tail))
        return out

    # -- decision-state extraction -----------------------------------------

    def states_mask(self, processor: int, states: Container[ViewId]):
        """Union of the occurrence masks of *processor*'s states ∈ *states*."""
        self._ensure_groups()
        out = self._zeros()
        views = self.group_views[processor]
        gids = [g for g, view in enumerate(views) if view in states]
        if not gids:
            return out
        starts = self._starts[processor]
        if self._py:
            idx = self._idx[processor]
            val = self._val[processor]
            for g in gids:
                for k in range(starts[g], starts[g + 1]):
                    out[idx[k]] |= val[k]
            return out
        np = _numpy
        ok = np.zeros(len(views), dtype=bool)
        ok[gids] = True
        sel = np.repeat(ok, self._sizes[processor])
        idx = self._idx[processor]
        np.bitwise_or.at(out, idx[sel], self._val[processor][sel])
        return out

    def state_verdicts(
        self, processor: int, truth
    ) -> Tuple[List[ViewId], List[int], List[int]]:
        """Classify each state group of *processor* against *truth*.

        Returns ``(views, full_ids, mixed_ids)``: the processor's views in
        group order, the group ids entirely inside *truth*, and the group
        ids that overlap it only partially (a state-determinism
        violation for decision formulas).
        """
        self._ensure_groups()
        truth = self._adopt(truth)
        views = self.group_views[processor]
        starts = self._starts[processor]
        if self._py:
            idx = self._idx[processor]
            val = self._val[processor]
            full_ids: List[int] = []
            mixed_ids: List[int] = []
            for g in range(len(starts) - 1):
                some = False
                notall = False
                for k in range(starts[g], starts[g + 1]):
                    overlap = val[k] & truth[idx[k]]
                    if overlap:
                        some = True
                    if overlap != val[k]:
                        notall = True
                    if some and notall:
                        break
                if not notall:
                    full_ids.append(g)
                elif some:
                    mixed_ids.append(g)
            return views, full_ids, mixed_ids
        np = _numpy
        idx = self._idx[processor]
        if idx.size == 0:
            return views, [], []
        val = self._val[processor]
        gathered = truth[idx]
        some = (val & gathered) != 0
        notall = (val & ~gathered) != 0
        rstarts = self._rstarts[processor]
        any_some = np.bitwise_or.reduceat(some, rstarts)
        any_notall = np.bitwise_or.reduceat(notall, rstarts)
        full_ids = np.flatnonzero(~any_notall).tolist()
        mixed_ids = np.flatnonzero(any_some & any_notall).tolist()
        return views, full_ids, mixed_ids

    def first_times(self, limbs) -> List[Optional[int]]:
        """Per run, the earliest set bit in the run's window (or None)."""
        width = self.width
        if not _is_py(limbs) and width <= LIMB_BITS:
            np = _numpy
            win = _extract_windows(limbs, self.num_runs, width)
            times = np.full(self.num_runs, -1, np.int64)
            for t in range(width - 1, -1, -1):
                hit = (win >> np.uint64(t)) & np.uint64(1)
                times = np.where(hit == np.uint64(1), t, times)
            return [None if t < 0 else t for t in times.tolist()]
        out: List[Optional[int]] = []
        for run_index in range(self.num_runs):
            bits = _window_int(limbs, run_index * width, width)
            out.append(
                None if not bits else (bits & -bits).bit_length() - 1
            )
        return out

    # -- member masks ------------------------------------------------------

    def pack_member_masks(self, members) -> List[object]:
        """Per-processor limb buffer of points where the processor ∈ S."""
        width = self.width
        masks = [[0] * self.nlimbs for _ in range(self.system.n)]
        for run_index, row in enumerate(members):
            base = run_index * width
            for time, cell in enumerate(row):
                if cell:
                    pos = base + time
                    limb = pos >> 6
                    bit = 1 << (pos & 63)
                    for processor in cell:
                        masks[processor][limb] |= bit
        if self._py:
            return masks
        np = _numpy
        return [np.array(buf, dtype=np.uint64) for buf in masks]

    # -- fixpoints ---------------------------------------------------------

    def fixpoint(
        self, member_masks, phi, post: Callable[[object], object]
    ) -> Tuple[object, int]:
        """Greatest fixed point of ``X ↔ post(E_S(φ ∧ X))`` on limbs.

        Returns ``(final limbs, iterations)``.  Downward iteration from
        all-true with the bitset kernel's alive-group bookkeeping, driven
        by a **dirty-limb frontier**: each round, only the limbs of the
        freshly eliminated set (``delta``) select candidate groups via
        the limb→groups map, so late iterations re-test just the groups
        whose points changed.  The numpy backend switches to a single
        vectorized full-table pass when the frontier is wide (same
        verdicts, lower constant factor than visiting groups one by one).
        """
        self._ensure_groups()
        tail = self.tail
        phi = self._adopt(phi)
        member_masks = [self._adopt(m) for m in member_masks]
        processors = [
            p for p in range(self.system.n) if _any(member_masks[p])
        ]
        bad = self._zeros()
        alive: Dict[int, object] = {}
        for p in processors:
            alive[p] = self._seed_alive(p, member_masks[p], phi, bad)
        current = self._ones()
        operand = phi
        iterations = 0
        while True:
            obs.count("fixpoint_iterations")
            iterations += 1
            candidate = post(_not(bad, tail))
            if _eq(candidate, current):
                obs.observe("fixpoint_iterations_per_call", iterations)
                return current, iterations
            new_operand = _and(phi, candidate)
            delta = _andnot(operand, new_operand)
            if _any(delta):
                dirty = self._dirty_limbs(delta)
                obs.observe("fixpoint_frontier_limbs", len(dirty))
                for p in processors:
                    self._kill_groups(
                        p, alive[p], member_masks[p], delta, dirty, bad
                    )
            operand = new_operand
            current = candidate

    def _dirty_limbs(self, delta) -> List[int]:
        if _is_py(delta):
            return [i for i, limb in enumerate(delta) if limb]
        return _numpy.flatnonzero(delta).tolist()

    # -- optional native (C) inner loop ------------------------------------

    def _native_lib(self):
        """The compiled fixpoint library under
        ``REPRO_CHUNKED_BACKEND=native``, else None (numpy path).

        Unavailability (no compiler, compile failure) degrades silently:
        the native backend is benchmarked but never load-bearing.
        """
        if self._py:
            return None
        from . import native

        if not native.requested():
            return None
        return native.library()

    def _starts_i64(self, processor: int):
        """The group-start offsets as a contiguous int64 array (cached)."""
        starts = self._native_starts[processor]
        if starts is None:
            starts = _numpy.array(
                self._starts[processor], dtype=_numpy.int64
            )
            self._native_starts[processor] = starts
        return starts

    def _seed_alive(self, processor: int, pmask, phi, bad):
        """Initial alive flags (operand = φ); dead groups feed *bad*."""
        idx = self._idx[processor]
        val = self._val[processor]
        starts = self._starts[processor]
        if self._py:
            flags = []
            for g in range(len(starts) - 1):
                s, e = starts[g], starts[g + 1]
                ok = True
                for k in range(s, e):
                    if (val[k] & pmask[idx[k]]) & ~phi[idx[k]]:
                        ok = False
                        break
                flags.append(ok)
                if not ok:
                    for k in range(s, e):
                        bad[idx[k]] |= val[k] & pmask[idx[k]]
            return flags
        np = _numpy
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        lib = self._native_lib()
        if lib is not None:
            from . import native

            return native.seed_alive(
                np,
                lib,
                self._starts_i64(processor),
                idx,
                val,
                np.ascontiguousarray(pmask, dtype=np.uint64),
                np.ascontiguousarray(phi, dtype=np.uint64),
                bad,
            )
        rel = val & pmask[idx]
        badent = (rel & ~phi[idx]) != 0
        grp_bad = np.bitwise_or.reduceat(badent, self._rstarts[processor])
        if grp_bad.any():
            sel = np.repeat(grp_bad, self._sizes[processor])
            np.bitwise_or.at(bad, idx[sel], rel[sel])
        return ~grp_bad

    #: Frontier width (in limbs) beyond which the numpy backend prefers
    #: one vectorized full-table pass over per-group sparse tests.
    _SPARSE_FRONTIER_LIMBS = 48

    def _kill_groups(
        self, processor: int, alive, pmask, delta, dirty: List[int], bad
    ) -> None:
        """Retire alive groups whose S-member points intersect *delta*."""
        idx = self._idx[processor]
        val = self._val[processor]
        starts = self._starts[processor]
        if self._py:
            mapping = self._limb_groups(processor)
            candidates: set = set()
            for limb in dirty:
                candidates.update(mapping.get(limb, ()))
            for g in sorted(candidates):
                if not alive[g]:
                    continue
                s, e = starts[g], starts[g + 1]
                hit = False
                for k in range(s, e):
                    if val[k] & delta[idx[k]] & pmask[idx[k]]:
                        hit = True
                        break
                if hit:
                    alive[g] = False
                    for k in range(s, e):
                        bad[idx[k]] |= val[k] & pmask[idx[k]]
            return
        np = _numpy
        if idx.size == 0:
            return
        if len(dirty) <= self._SPARSE_FRONTIER_LIMBS:
            mapping = self._limb_groups(processor)
            candidates: set = set()
            for limb in dirty:
                candidates.update(mapping.get(limb, ()))
            for g in sorted(candidates):
                if not alive[g]:
                    continue
                s, e = starts[g], starts[g + 1]
                span = idx[s:e]
                if bool(np.any(val[s:e] & delta[span] & pmask[span])):
                    alive[g] = False
                    np.bitwise_or.at(
                        bad, span, val[s:e] & pmask[span]
                    )
            return
        lib = self._native_lib()
        if lib is not None:
            from . import native

            native.kill_groups(
                np,
                lib,
                self._starts_i64(processor),
                idx,
                val,
                np.ascontiguousarray(pmask, dtype=np.uint64),
                np.ascontiguousarray(delta, dtype=np.uint64),
                bad,
                alive,
            )
            return
        touch = (val & delta[idx] & pmask[idx]) != 0
        grp_hit = np.bitwise_or.reduceat(touch, self._rstarts[processor])
        newly = alive & grp_hit
        if newly.any():
            alive &= ~grp_hit
            sel = np.repeat(newly, self._sizes[processor])
            np.bitwise_or.at(bad, idx[sel], (val & pmask[idx])[sel])

    # -- matrix mode: batched (F, limbs) sweeps ----------------------------
    #
    # The fused planner (:mod:`repro.knowledge.planner`) evaluates a
    # *set* of formulas against one system.  When several ready formulas
    # share the same sweep shape — same processor for ``K``, same
    # (processor, nonrigid set) for ``B``, same nonrigid set for ``E`` or
    # a fixpoint — their operand buffers stack into one ``(F, limbs)``
    # uint64 matrix and the per-group entry table is gathered and
    # segment-reduced once for all F rows.  Row results are bit-for-bit
    # identical to F scalar sweeps; on the pure-Python backend each
    # ``*_many`` method simply loops the scalar implementation.

    def matrix_capable(self) -> bool:
        """Whether this index can run batched matrix sweeps (numpy)."""
        return not self._py

    def _stack(self, phis):
        np = _numpy
        return np.stack(
            [_coerce(phi, to_python=False) for phi in phis]
        ).astype(np.uint64, copy=False)

    def knows_limbs_many(self, processor: int, phis) -> List[object]:
        """``[K_p φ for φ in phis]`` in one gather/reduce pass."""
        if not phis:
            return []
        self._ensure_groups()
        if self._py:
            return [self.knows_limbs(processor, phi) for phi in phis]
        np = _numpy
        phi2 = self._stack(phis)
        count = phi2.shape[0]
        out = np.zeros((count, self.nlimbs), np.uint64)
        idx = self._idx[processor]
        if idx.size == 0:
            return list(out)
        val = self._val[processor]
        bad = (val[None, :] & ~phi2[:, idx]) != 0
        grp_bad = np.bitwise_or.reduceat(
            bad, self._rstarts[processor], axis=1
        )
        sizes = self._sizes[processor]
        for f in range(count):
            if grp_bad[f].all():
                continue
            sel = np.repeat(~grp_bad[f], sizes)
            np.bitwise_or.at(out[f], idx[sel], val[sel])
        return list(out)

    def believes_limbs_many(self, processor: int, pmask, phis) -> List[object]:
        """``[B_p^S φ for φ in phis]`` sharing one membership gather."""
        if not phis:
            return []
        self._ensure_groups()
        if self._py:
            return [
                self.believes_limbs(processor, pmask, phi) for phi in phis
            ]
        np = _numpy
        phi2 = self._stack(phis)
        pmask = self._adopt(pmask)
        count = phi2.shape[0]
        out = np.zeros((count, self.nlimbs), np.uint64)
        idx = self._idx[processor]
        if idx.size == 0:
            return list(out)
        val = self._val[processor]
        rel = val & pmask[idx]
        bad = (rel[None, :] & ~phi2[:, idx]) != 0
        grp_bad = np.bitwise_or.reduceat(
            bad, self._rstarts[processor], axis=1
        )
        sizes = self._sizes[processor]
        for f in range(count):
            if grp_bad[f].all():
                continue
            sel = np.repeat(~grp_bad[f], sizes)
            np.bitwise_or.at(out[f], idx[sel], val[sel])
        return list(out)

    def everyone_limbs_many(self, member_masks, phis) -> List[object]:
        """``[E_S φ for φ in phis]`` with one membership pass per processor."""
        if not phis:
            return []
        if self._py:
            return [self.everyone_limbs(member_masks, phi) for phi in phis]
        np = _numpy
        phi2 = self._stack(phis)
        count = phi2.shape[0]
        bad_total = np.zeros((count, self.nlimbs), np.uint64)
        for processor in range(self.system.n):
            pmask = self._adopt(member_masks[processor])
            if not _any(pmask):
                continue
            beliefs = self.believes_limbs_many(processor, pmask, list(phi2))
            for f in range(count):
                bad_total[f] |= pmask & _not(beliefs[f], self.tail)
        return [_not(bad_total[f], self.tail) for f in range(count)]

    def fixpoint_many(
        self, member_masks, phis, post: Callable[[object], object]
    ) -> Tuple[List[object], List[int]]:
        """Batched greatest fixpoints sharing one frontier per round.

        Iterates all F fixpoints in lockstep: each round evaluates
        ``post`` once on the whole ``(F, limbs)`` matrix (the temporal
        sweeps are axis-agnostic) and retires state groups against the
        union frontier of every row's freshly eliminated set, one
        gather/reduce per processor instead of F.  A row that reaches
        its fixed point stops changing (its delta is empty), so lockstep
        iteration returns exactly the scalar :meth:`fixpoint` result and
        iteration count per row.
        """
        if not phis:
            return [], []
        self._ensure_groups()
        if self._py:
            results: List[object] = []
            iterations: List[int] = []
            for phi in phis:
                limbs, iters = self.fixpoint(member_masks, phi, post)
                results.append(limbs)
                iterations.append(iters)
            return results, iterations
        np = _numpy
        tail = self.tail
        phi2 = self._stack(phis)
        count = phi2.shape[0]
        member_masks = [self._adopt(m) for m in member_masks]
        processors = [
            p for p in range(self.system.n) if _any(member_masks[p])
        ]
        bad = np.zeros((count, self.nlimbs), np.uint64)
        alive: Dict[int, object] = {}
        for p in processors:
            alive[p] = self._seed_alive_many(
                p, member_masks[p], phi2, bad
            )
        current = np.tile(self._ones(), (count, 1))
        operand = phi2.copy()
        done = np.zeros(count, dtype=bool)
        iterations = [0] * count
        while True:
            obs.count("fixpoint_matrix_rounds")
            for f in range(count):
                if not done[f]:
                    obs.count("fixpoint_iterations")
                    iterations[f] += 1
            candidate = post(_not(bad, tail))
            done |= (candidate == current).all(axis=1)
            if done.all():
                for iters in iterations:
                    obs.observe("fixpoint_iterations_per_call", iters)
                return list(candidate), iterations
            new_operand = phi2 & candidate
            delta = operand & ~new_operand
            if delta.any():
                for p in processors:
                    self._kill_groups_many(
                        p, alive[p], member_masks[p], delta, bad
                    )
            operand = new_operand
            current = candidate

    def _seed_alive_many(self, processor: int, pmask, phi2, bad):
        """Matrix seeding: per-row alive flags, dead groups feed ``bad``."""
        np = _numpy
        idx = self._idx[processor]
        count = phi2.shape[0]
        if idx.size == 0:
            return np.zeros((count, 0), dtype=bool)
        val = self._val[processor]
        rel = val & pmask[idx]
        badent = (rel[None, :] & ~phi2[:, idx]) != 0
        grp_bad = np.bitwise_or.reduceat(
            badent, self._rstarts[processor], axis=1
        )
        sizes = self._sizes[processor]
        for f in range(count):
            if grp_bad[f].any():
                sel = np.repeat(grp_bad[f], sizes)
                np.bitwise_or.at(bad[f], idx[sel], rel[sel])
        return ~grp_bad

    def _kill_groups_many(
        self, processor: int, alive, pmask, delta, bad
    ) -> None:
        """Matrix kill pass: one gather/reduce for all F rows' deltas."""
        np = _numpy
        idx = self._idx[processor]
        if idx.size == 0:
            return
        val = self._val[processor]
        rel = val & pmask[idx]
        touch = (rel[None, :] & delta[:, idx]) != 0
        grp_hit = np.bitwise_or.reduceat(
            touch, self._rstarts[processor], axis=1
        )
        newly = alive & grp_hit
        if not newly.any():
            return
        alive &= ~grp_hit
        sizes = self._sizes[processor]
        for f in range(newly.shape[0]):
            if newly[f].any():
                sel = np.repeat(newly[f], sizes)
                np.bitwise_or.at(bad[f], idx[sel], rel[sel])
