"""Systems: the full set of runs used to interpret knowledge formulas.

A *system* ``R`` (paper, Section 2.3) is a set of runs; knowledge at a point
``(r, m)`` quantifies over all points of the system at which the processor
has the same local state.  This module provides:

* :class:`System` — the enumerated run set for one ``(n, t, mode, horizon)``
  together with the state index that powers knowledge evaluation, and
* :class:`TruthAssignment` — a boolean valuation of all points of a system,
  the working currency of the formula evaluator.

Systems are immutable after construction; evaluation results are cached on
the system keyed by formula cache keys (see :mod:`repro.knowledge.formulas`).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, EvaluationError
from .adversary import Adversary
from .config import InitialConfiguration, all_configurations
from .failures import FailureMode, FailurePattern, ProcessorId
from .runs import Run, build_run
from .views import ViewId, ViewTable

Point = Tuple[int, int]  # (run index, time)
ScenarioKey = Tuple[InitialConfiguration, FailurePattern]


class TruthAssignment:
    """A boolean valuation over every point of a system.

    Stored as one list of booleans per run (indexed by time ``0..horizon``).
    Instances are treated as immutable by the evaluator; helpers that derive
    new assignments always allocate.
    """

    __slots__ = ("values",)

    def __init__(self, values: List[List[bool]]) -> None:
        self.values = values

    @classmethod
    def constant(cls, system: "System", value: bool) -> "TruthAssignment":
        return cls(
            [[value] * (system.horizon + 1) for _ in range(len(system.runs))]
        )

    @classmethod
    def from_predicate(
        cls, system: "System", predicate: Callable[[int, int], bool]
    ) -> "TruthAssignment":
        """Build from a ``(run_index, time) -> bool`` predicate."""
        return cls(
            [
                [predicate(run_index, time) for time in range(system.horizon + 1)]
                for run_index in range(len(system.runs))
            ]
        )

    def at(self, run_index: int, time: int) -> bool:
        return self.values[run_index][time]

    def count_true(self) -> int:
        return sum(sum(1 for v in row if v) for row in self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthAssignment):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:  # pragma: no cover - not hashed in practice
        return hash(tuple(tuple(row) for row in self.values))

    # -- pointwise algebra -------------------------------------------------

    def negate(self) -> "TruthAssignment":
        return TruthAssignment([[not v for v in row] for row in self.values])

    def conjoin(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [a and b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.values)
            ]
        )

    def disjoin(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [a or b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.values)
            ]
        )

    def implies(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [(not a) or b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.values)
            ]
        )

    def is_valid(self) -> bool:
        """True when the assignment holds at *every* point (the paper's
        ``R |= φ``)."""
        return all(all(row) for row in self.values)


class System:
    """An enumerated system of full-information runs.

    Attributes:
        n: Number of processors.
        t: Fault bound used during enumeration.
        mode: Failure mode of the adversary (``None`` for a purely
            failure-free system).
        horizon: Times ``0..horizon`` exist in every run.
        runs: The run list; order is deterministic.
        table: The shared view-interning table.
    """

    def __init__(
        self,
        n: int,
        t: int,
        horizon: int,
        runs: Sequence[Run],
        table: ViewTable,
        mode: Optional[FailureMode],
    ) -> None:
        if not runs:
            raise ConfigurationError("a system needs at least one run")
        self.n = n
        self.t = t
        self.horizon = horizon
        self.runs: List[Run] = list(runs)
        self.table = table
        self.mode = mode
        # state index: view id -> points sharing that local state.  View ids
        # embed processor and time, so one map covers all processors.
        self._state_index: Dict[ViewId, List[Point]] = {}
        self._scenario_index: Dict[ScenarioKey, int] = {}
        for run_index, run in enumerate(self.runs):
            key = run.scenario_key()
            if key in self._scenario_index:
                raise ConfigurationError(
                    f"duplicate scenario in system: {key[0]} / {key[1]}"
                )
            self._scenario_index[key] = run_index
            for time in range(horizon + 1):
                for processor in range(n):
                    view = run.view(processor, time)
                    self._state_index.setdefault(view, []).append(
                        (run_index, time)
                    )
        self._formula_cache: Dict[object, TruthAssignment] = {}
        self._nonrigid_cache: Dict[object, List[List[FrozenSet[int]]]] = {}

    # -- structure ---------------------------------------------------------

    def points(self) -> Iterator[Point]:
        """All points ``(run_index, time)`` of the system."""
        for run_index in range(len(self.runs)):
            for time in range(self.horizon + 1):
                yield (run_index, time)

    def num_points(self) -> int:
        return len(self.runs) * (self.horizon + 1)

    def run(self, run_index: int) -> Run:
        return self.runs[run_index]

    def same_state_points(self, view: ViewId) -> List[Point]:
        """All points at which the view's owner has exactly this state."""
        return self._state_index.get(view, [])

    def run_index_for(
        self, config: InitialConfiguration, pattern: FailurePattern
    ) -> int:
        """Index of the run determined by a scenario (config, pattern)."""
        try:
            return self._scenario_index[(config, pattern)]
        except KeyError:
            raise EvaluationError(
                f"scenario not present in system: {config} / {pattern}"
            ) from None

    def scenarios(self) -> List[ScenarioKey]:
        """The (config, pattern) pairs of all runs, in run order."""
        return [run.scenario_key() for run in self.runs]

    def occurring_views(self) -> Iterator[ViewId]:
        """All view ids that occur at some point of the system."""
        return iter(self._state_index)

    # -- caches ------------------------------------------------------------

    def cached_evaluation(
        self, key: object, compute: Callable[[], TruthAssignment]
    ) -> TruthAssignment:
        """Memoize a formula evaluation under *key*."""
        existing = self._formula_cache.get(key)
        if existing is not None:
            return existing
        result = compute()
        self._formula_cache[key] = result
        return result

    def cached_nonrigid(
        self, key: object, compute: Callable[[], List[List[FrozenSet[int]]]]
    ) -> List[List[FrozenSet[int]]]:
        """Memoize a nonrigid set's member matrix under *key*."""
        existing = self._nonrigid_cache.get(key)
        if existing is not None:
            return existing
        result = compute()
        self._nonrigid_cache[key] = result
        return result

    def clear_caches(self) -> None:
        """Drop all memoized evaluations (mainly for tests)."""
        self._formula_cache.clear()
        self._nonrigid_cache.clear()


def build_system(
    adversary: Adversary,
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    table: Optional[ViewTable] = None,
) -> System:
    """Enumerate the system of full-information runs for *adversary*.

    Args:
        adversary: Supplies ``(n, t, horizon)`` and the failure patterns.
        configs: Initial configurations to include; defaults to all ``2**n``.
        table: View table to intern into; defaults to a fresh one.  Supplying
            a shared table lets several systems (e.g. crash and omission
            variants of the same parameters) share state ids.

    Returns:
        The enumerated :class:`System`.
    """
    n, t, horizon = adversary.n, adversary.t, adversary.horizon
    if table is None:
        table = ViewTable()
    if configs is None:
        config_list = list(all_configurations(n))
    else:
        config_list = list(configs)
        for config in config_list:
            if config.n != n:
                raise ConfigurationError(
                    f"configuration {config} has n={config.n}, expected {n}"
                )
    patterns = list(adversary.patterns())
    runs: List[Run] = []
    for config in config_list:
        for pattern in patterns:
            pattern.validate(n, t)
            runs.append(build_run(config, pattern, horizon, table))
    return System(n, t, horizon, runs, table, adversary.mode)
