"""Systems: the full set of runs used to interpret knowledge formulas.

A *system* ``R`` (paper, Section 2.3) is a set of runs; knowledge at a point
``(r, m)`` quantifies over all points of the system at which the processor
has the same local state.  This module provides:

* :class:`System` — the enumerated run set for one ``(n, t, mode, horizon)``
  together with the state index that powers knowledge evaluation, and
* :class:`TruthAssignment` — a boolean valuation of all points of a system,
  the working currency of the formula evaluator.

Systems are immutable after construction; evaluation results are cached on
the system keyed by formula cache keys (see :mod:`repro.knowledge.formulas`).
"""

from __future__ import annotations

import multiprocessing
import os
import time as _time
from typing import Callable, Container, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .. import obs, trace
from ..errors import ConfigurationError, EvaluationError
from . import kernels
from .adversary import Adversary
from .config import InitialConfiguration, all_configurations
from .failures import FailureMode, FailurePattern, ProcessorId, truncate_pattern
from .runs import Run, build_run
from .views import ViewId, ViewTable, merge_entries

Point = Tuple[int, int]  # (run index, time)
ScenarioKey = Tuple[InitialConfiguration, FailurePattern]


def _chunked():
    """The chunked-kernel module, imported lazily to avoid a cycle
    (:mod:`repro.model.chunked` subclasses :class:`TruthAssignment`)."""
    from . import chunked

    return chunked


def _pack_rows(rows: Sequence[Sequence[bool]], width: int) -> int:
    """Pack per-run boolean rows into one point-indexed bitmask."""
    mask = 0
    base = 0
    for row in rows:
        bits = 0
        for time, value in enumerate(row):
            if value:
                bits |= 1 << time
        mask |= bits << base
        base += width
    return mask


class TruthAssignment:
    """A boolean valuation over every point of a system.

    This class doubles as the **reference kernel**: values live in one list
    of booleans per run (indexed by time ``0..horizon``).  The default
    **bitset kernel** stores the same valuation packed into a single
    integer (:class:`BitsetAssignment`); the **chunked kernel** stores it
    as a 64-bit limb array (:class:`repro.model.chunked.ChunkedAssignment`),
    which is what huge systems resolve to.  The class factories
    ``constant`` / ``from_predicate`` / ``from_rows`` / ``from_run_levels``
    build whichever representation ``System.effective_kernel`` selects, so
    evaluator code is written against this shared interface.

    Instances are treated as immutable by the evaluator; helpers that
    derive new assignments always allocate.
    """

    __slots__ = ("values",)

    def __init__(self, values: List[List[bool]]) -> None:
        self.values = values

    # -- kernel-dispatching factories --------------------------------------

    @staticmethod
    def constant(system: "System", value: bool) -> "TruthAssignment":
        kernel = system.effective_kernel()
        if kernel == kernels.BITSET:
            return BitsetAssignment.constant(system, value)
        if kernel == kernels.CHUNKED:
            return _chunked().ChunkedAssignment.constant(system, value)
        return TruthAssignment(
            [[value] * (system.horizon + 1) for _ in range(len(system.runs))]
        )

    @staticmethod
    def from_predicate(
        system: "System", predicate: Callable[[int, int], bool]
    ) -> "TruthAssignment":
        """Build from a ``(run_index, time) -> bool`` predicate."""
        rows = [
            [
                bool(predicate(run_index, time))
                for time in range(system.horizon + 1)
            ]
            for run_index in range(len(system.runs))
        ]
        return TruthAssignment.from_rows(system, rows)

    @staticmethod
    def from_states(
        system: "System", processor: int, states: Container[ViewId]
    ) -> "TruthAssignment":
        """Truth at ``(r, m)`` iff the processor's local state there ∈ *states*.

        Under the packed kernels this is a union of precomputed same-state
        occurrence masks — no per-point predicate calls.
        """
        kernel = system.effective_kernel()
        if kernel == kernels.BITSET:
            index = system.bitset_index()
            owners = index.view_owner
            mask = 0
            for view, gmask in index.view_masks.items():
                if owners[view] == processor and view in states:
                    mask |= gmask
            return BitsetAssignment(mask, index.num_runs, index.width)
        if kernel == kernels.CHUNKED:
            cindex = system.chunked_index()
            return cindex.wrap(cindex.states_mask(processor, states))
        return TruthAssignment.from_predicate(
            system,
            lambda run_index, time: system.runs[run_index].view(
                processor, time
            )
            in states,
        )

    @staticmethod
    def from_rows(
        system: "System", rows: List[List[bool]]
    ) -> "TruthAssignment":
        """Build from explicit per-run boolean rows."""
        kernel = system.effective_kernel()
        if kernel == kernels.BITSET:
            return BitsetAssignment(
                _pack_rows(rows, system.horizon + 1),
                len(system.runs),
                system.horizon + 1,
            )
        if kernel == kernels.CHUNKED:
            return _chunked().ChunkedAssignment.from_rows(system, rows)
        return TruthAssignment(rows)

    @staticmethod
    def from_run_levels(
        system: "System", run_levels: Sequence[bool]
    ) -> "TruthAssignment":
        """Build a run-level assignment (same truth at every time of a run)."""
        width = system.horizon + 1
        kernel = system.effective_kernel()
        if kernel == kernels.BITSET:
            block = (1 << width) - 1
            mask = 0
            for run_index, value in enumerate(run_levels):
                if value:
                    mask |= block << (run_index * width)
            return BitsetAssignment(mask, len(system.runs), width)
        if kernel == kernels.CHUNKED:
            return _chunked().ChunkedAssignment.from_run_levels(
                system, run_levels
            )
        return TruthAssignment(
            [[bool(value)] * width for value in run_levels]
        )

    # -- point access ------------------------------------------------------

    def at(self, run_index: int, time: int) -> bool:
        return self.values[run_index][time]

    def count_true(self) -> int:
        return sum(sum(1 for v in row if v) for row in self.values)

    def to_rows(self) -> List[List[bool]]:
        """Per-run boolean rows (treat as read-only for the reference
        kernel, which returns its backing storage)."""
        return self.values

    def run_levels(self) -> List[bool]:
        """Time-0 truth per run (exact for run-level assignments)."""
        return [bool(row[0]) for row in self.values]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitsetAssignment):
            return other == self
        if not isinstance(other, TruthAssignment):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:  # pragma: no cover - not hashed in practice
        return hash(tuple(tuple(row) for row in self.values))

    # -- pointwise algebra -------------------------------------------------

    def negate(self) -> "TruthAssignment":
        return TruthAssignment([[not v for v in row] for row in self.values])

    def conjoin(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [a and b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.to_rows())
            ]
        )

    def disjoin(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [a or b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.to_rows())
            ]
        )

    def implies(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [(not a) or b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.to_rows())
            ]
        )

    def is_valid(self) -> bool:
        """True when the assignment holds at *every* point (the paper's
        ``R |= φ``)."""
        return all(all(row) for row in self.values)


class BitsetAssignment(TruthAssignment):
    """Bitset-kernel truth assignment: one integer, one bit per point.

    The point ``(run_index, time)`` maps to bit ``run_index * width +
    time`` where ``width = horizon + 1``, so each run occupies one
    contiguous ``width``-bit block.  Boolean algebra is word-wide integer
    arithmetic on arbitrary-precision ints — a ``conjoin`` over a
    1360-run system is a single C-level ``&`` instead of ~5400 list
    operations.  The knowledge evaluators in
    :mod:`repro.knowledge.semantics` recognize this representation and
    switch to group AND-reductions over the
    :class:`BitsetIndex` of the system.
    """

    __slots__ = ("mask", "num_runs", "width", "full")

    def __init__(self, mask: int, num_runs: int, width: int) -> None:
        self.mask = mask
        self.num_runs = num_runs
        self.width = width
        self.full = (1 << (num_runs * width)) - 1

    # -- factories ---------------------------------------------------------

    @staticmethod
    def constant(system: "System", value: bool) -> "BitsetAssignment":
        width = system.horizon + 1
        num_runs = len(system.runs)
        mask = (1 << (num_runs * width)) - 1 if value else 0
        return BitsetAssignment(mask, num_runs, width)

    def _replace(self, mask: int) -> "BitsetAssignment":
        """Same shape, different mask (already truncated to ``full``)."""
        clone = BitsetAssignment.__new__(BitsetAssignment)
        clone.mask = mask
        clone.num_runs = self.num_runs
        clone.width = self.width
        clone.full = self.full
        return clone

    # -- point access ------------------------------------------------------

    @property
    def values(self) -> List[List[bool]]:
        """Materialized per-run rows (compat with row-oriented readers)."""
        return self.to_rows()

    def at(self, run_index: int, time: int) -> bool:
        return bool((self.mask >> (run_index * self.width + time)) & 1)

    def count_true(self) -> int:
        return self.mask.bit_count()

    def to_rows(self) -> List[List[bool]]:
        mask, width = self.mask, self.width
        block = (1 << width) - 1
        rows = []
        for run_index in range(self.num_runs):
            bits = (mask >> (run_index * width)) & block
            rows.append([bool((bits >> time) & 1) for time in range(width)])
        return rows

    def run_levels(self) -> List[bool]:
        mask, width = self.mask, self.width
        return [
            bool((mask >> (run_index * width)) & 1)
            for run_index in range(self.num_runs)
        ]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitsetAssignment):
            return (
                self.mask == other.mask
                and self.num_runs == other.num_runs
                and self.width == other.width
            )
        if isinstance(other, TruthAssignment):
            return self.to_rows() == other.values
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - not hashed in practice
        return hash((self.mask, self.num_runs, self.width))

    # -- pointwise algebra -------------------------------------------------

    def _mask_of(self, other: "TruthAssignment") -> int:
        if isinstance(other, BitsetAssignment):
            return other.mask
        return _pack_rows(other.values, self.width)

    def negate(self) -> "BitsetAssignment":
        return self._replace(self.full & ~self.mask)

    def conjoin(self, other: "TruthAssignment") -> "BitsetAssignment":
        return self._replace(self.mask & self._mask_of(other))

    def disjoin(self, other: "TruthAssignment") -> "BitsetAssignment":
        return self._replace(self.mask | self._mask_of(other))

    def implies(self, other: "TruthAssignment") -> "BitsetAssignment":
        return self._replace(
            (self.full & ~self.mask) | self._mask_of(other)
        )

    def is_valid(self) -> bool:
        return self.mask == self.full


class BitsetIndex:
    """Dense same-state group index powering the bitset kernel.

    Precomputed once per system (lazily, on the first bitset evaluation):

    * ``groups[p]`` — for each distinct local state of processor ``p``, the
      bitmask of the points sharing that state.  ``K_p φ`` is then one
      subset test (``phi & group == group``) per distinct state, broadcast
      by OR-ing the group mask into the result;
    * ``col0`` — the time-0 column (one bit per run), from which any time
      column is a shift; the temporal operators sweep columns instead of
      points;
    * ``member_masks`` — per nonrigid-set cache key, the per-processor
      bitmask of points where the processor is a member (computed on demand
      by :mod:`repro.knowledge.semantics` and memoized here);
    * ``view_owner`` — owning processor per occurring view id, shared by
      the Corollary 3.3 reachability scan.
    """

    __slots__ = (
        "num_runs",
        "width",
        "full",
        "col0",
        "run_block",
        "groups",
        "view_masks",
        "view_owner",
        "member_masks",
    )

    def __init__(self, system: "System") -> None:
        width = system.horizon + 1
        num_runs = len(system.runs)
        self.num_runs = num_runs
        self.width = width
        self.full = (1 << (num_runs * width)) - 1
        col0 = 0
        for run_index in range(num_runs):
            col0 |= 1 << (run_index * width)
        self.col0 = col0
        self.run_block = (1 << width) - 1
        self.groups: List[List[int]] = [[] for _ in range(system.n)]
        self.view_masks: Dict[ViewId, int] = {}
        self.view_owner: Dict[ViewId, int] = {}
        table = system.table
        for view, points in system._state_index.items():
            gmask = 0
            for run_index, time in points:
                gmask |= 1 << (run_index * width + time)
            owner = table.info(view).processor
            self.view_masks[view] = gmask
            self.view_owner[view] = owner
            self.groups[owner].append(gmask)
        self.member_masks: Dict[object, List[int]] = {}

    def position(self, run_index: int, time: int) -> int:
        """Bit position of the point ``(run_index, time)``."""
        return run_index * self.width + time

    def spread_run_levels(self, run_bits: int) -> int:
        """Broadcast a col0-aligned per-run bit to the run's full window.

        ``run_bits`` has at most one bit per ``width``-block (positions
        ``run_index * width``); multiplying by the all-ones block replicates
        each into ``width`` consecutive bits with no carry overlap.
        """
        return run_bits * self.run_block


class System:
    """An enumerated system of full-information runs.

    Attributes:
        n: Number of processors.
        t: Fault bound used during enumeration.
        mode: Failure mode of the adversary (``None`` for a purely
            failure-free system).
        horizon: Times ``0..horizon`` exist in every run.
        runs: The run list; order is deterministic.
        table: The shared view-interning table.
    """

    def __init__(
        self,
        n: int,
        t: int,
        horizon: int,
        runs: Sequence[Run],
        table: ViewTable,
        mode: Optional[FailureMode],
    ) -> None:
        if not runs:
            raise ConfigurationError("a system needs at least one run")
        self.n = n
        self.t = t
        self.horizon = horizon
        self.runs: List[Run] = list(runs)
        self.table = table
        self.mode = mode
        # state index: view id -> points sharing that local state.  View ids
        # embed processor and time, so one map covers all processors.
        self._state_index: Dict[ViewId, List[Point]] = {}
        self._scenario_index: Dict[ScenarioKey, int] = {}
        for run_index, run in enumerate(self.runs):
            key = run.scenario_key()
            if key in self._scenario_index:
                raise ConfigurationError(
                    f"duplicate scenario in system: {key[0]} / {key[1]}"
                )
            self._scenario_index[key] = run_index
            for time in range(horizon + 1):
                for processor in range(n):
                    view = run.view(processor, time)
                    self._state_index.setdefault(view, []).append(
                        (run_index, time)
                    )
        self._formula_cache: Dict[object, TruthAssignment] = {}
        self._nonrigid_cache: Dict[object, List[List[FrozenSet[int]]]] = {}
        self._components_cache: Dict[object, List[int]] = {}
        self._bitset_index: Optional[BitsetIndex] = None
        self._chunked_index: Optional[object] = None
        self._noted_kernels: set = set()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        # Provider pickle sidecars written before the chunked kernel lack
        # the newer lazy attributes; backfill so cached systems keep
        # working across versions.
        self.__dict__.setdefault("_chunked_index", None)
        self.__dict__.setdefault("_noted_kernels", set())

    # -- structure ---------------------------------------------------------

    def points(self) -> Iterator[Point]:
        """All points ``(run_index, time)`` of the system."""
        for run_index in range(len(self.runs)):
            for time in range(self.horizon + 1):
                yield (run_index, time)

    def num_points(self) -> int:
        return len(self.runs) * (self.horizon + 1)

    def run(self, run_index: int) -> Run:
        return self.runs[run_index]

    def same_state_points(self, view: ViewId) -> List[Point]:
        """All points at which the view's owner has exactly this state."""
        return self._state_index.get(view, [])

    def run_index_for(
        self, config: InitialConfiguration, pattern: FailurePattern
    ) -> int:
        """Index of the run determined by a scenario (config, pattern)."""
        try:
            return self._scenario_index[(config, pattern)]
        except KeyError:
            raise EvaluationError(
                f"scenario not present in system: {config} / {pattern}"
            ) from None

    def scenarios(self) -> List[ScenarioKey]:
        """The (config, pattern) pairs of all runs, in run order."""
        return [run.scenario_key() for run in self.runs]

    def occurring_views(self) -> Iterator[ViewId]:
        """All view ids that occur at some point of the system."""
        return iter(self._state_index)

    def effective_kernel(self) -> str:
        """The kernel evaluations on this system actually use.

        Resolves :func:`repro.model.kernels.active_kernel` against the
        system's size through the pure
        :func:`repro.model.kernels.resolve_selection` rule: beyond
        :data:`~repro.model.kernels.BITSET_POINT_LIMIT` points every
        single-integer mask operation costs O(mask length), so a
        ``bitset`` selection is *upgraded* to the ``chunked`` limb-array
        kernel, which keeps packed semantics with O(limbs touched)
        algebra.  (This replaces the old silent fall back to the
        reference layout.)  Explicit ``chunked`` and ``reference``
        selections are honoured at any size.  Every distinct resolution
        is reported once per system through
        :func:`repro.model.kernels.note_selection` — visible as
        ``kernel_selected_*`` counters and in ``repro-eba stats``.
        """
        requested = kernels.active_kernel()
        selected = kernels.resolve_selection(requested, self.num_points())
        if (requested, selected) not in self._noted_kernels:
            self._noted_kernels.add((requested, selected))
            kernels.note_selection(
                self.describe(), self.num_points(), requested, selected
            )
        return selected

    def describe(self) -> str:
        """Compact one-line descriptor (used by the kernel-selection log)."""
        mode = self.mode.value if self.mode is not None else "none"
        return (
            f"{mode} n={self.n} t={self.t} h={self.horizon} "
            f"runs={len(self.runs)}"
        )

    def bitset_index(self) -> BitsetIndex:
        """The dense same-state group index (built lazily, then shared)."""
        index = self._bitset_index
        if index is None:
            with obs.stage("bitset_index"), trace.span(
                "bitset_index", runs=len(self.runs)
            ):
                index = BitsetIndex(self)
            self._bitset_index = index
        return index

    def chunked_index(self):
        """The limb-sliced group index (built lazily, then shared).

        The constructor only lays out the limb geometry; the group
        tables are built on the first knowledge sweep (see
        :class:`repro.model.chunked.ChunkedIndex`), so temporal-only
        workloads never pay for them.
        """
        index = self._chunked_index
        if index is None:
            with trace.span("chunked_index", runs=len(self.runs)):
                index = _chunked().ChunkedIndex(self)
            self._chunked_index = index
        return index

    # -- caches ------------------------------------------------------------

    def cached_evaluation(
        self, key: object, compute: Callable[[], TruthAssignment]
    ) -> TruthAssignment:
        """Memoize a formula evaluation under *key*.

        Keys are qualified by the kernel this system *resolves* to
        (:meth:`effective_kernel`, three-valued), so assignments of
        different representations never alias each other in the cache —
        including across the automatic bitset→chunked upgrade boundary
        and mid-process :func:`~repro.model.kernels.use_kernel` switches.
        """
        key = (self.effective_kernel(), key)
        existing = self._formula_cache.get(key)
        if existing is not None:
            obs.count("formula_cache_hits")
            return existing
        obs.count("formula_cache_misses")
        with obs.stage("formula_eval"), trace.span(
            "formula_eval", key=_short_key(key)
        ):
            result = compute()
        self._formula_cache[key] = result
        return result

    def cached_nonrigid(
        self, key: object, compute: Callable[[], List[List[FrozenSet[int]]]]
    ) -> List[List[FrozenSet[int]]]:
        """Memoize a nonrigid set's member matrix under *key*."""
        existing = self._nonrigid_cache.get(key)
        if existing is not None:
            return existing
        result = compute()
        self._nonrigid_cache[key] = result
        return result

    def cached_components(
        self, key: object, compute: Callable[[], List[int]]
    ) -> List[int]:
        """Memoize a run-component labelling under *key*.

        Component labellings depend only on the system and a nonrigid set,
        never on the evaluation kernel.  Callers must treat the returned
        list as read-only.
        """
        existing = self._components_cache.get(key)
        if existing is not None:
            obs.count("components_cache_hits")
            return existing
        obs.count("components_cache_misses")
        result = compute()
        self._components_cache[key] = result
        return result

    def clear_caches(self) -> None:
        """Drop all memoized evaluations and lazy indexes (mainly for
        tests — e.g. to rebuild the chunked index under a different limb
        backend)."""
        self._formula_cache.clear()
        self._nonrigid_cache.clear()
        self._components_cache.clear()
        self._bitset_index = None
        self._chunked_index = None


def _short_key(key: object, limit: int = 96) -> str:
    """A bounded textual form of a structural cache key for span labels."""
    text = repr(key)
    return text if len(text) <= limit else text[: limit - 3] + "..."


#: Minimum scenario count before the auto worker policy considers forking.
PARALLEL_BUILD_THRESHOLD = 20000


def _resolve_workers(workers: Optional[int], num_scenarios: int) -> int:
    """How many processes to enumerate with (1 = serial).

    Explicit *workers* wins; otherwise the ``REPRO_BUILD_WORKERS`` env var;
    otherwise auto — parallel only when the scenario space is large enough
    (:data:`PARALLEL_BUILD_THRESHOLD`) to amortize process startup and
    result pickling, and the machine has more than one core.

    An unset or blank ``REPRO_BUILD_WORKERS`` means auto; anything else
    must parse as an integer >= 1 or the variable is reported via
    :class:`ConfigurationError` (never a bare ``ValueError``).
    """
    if workers is None:
        env = os.environ.get("REPRO_BUILD_WORKERS")
        if env is not None and env.strip():
            try:
                workers = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_BUILD_WORKERS must be an integer >= 1, "
                    f"got {env!r}"
                ) from None
            if workers < 1:
                raise ConfigurationError(
                    f"REPRO_BUILD_WORKERS must be an integer >= 1, "
                    f"got {env!r}"
                )
    if workers is None:
        cores = os.cpu_count() or 1
        if cores < 2 or num_scenarios < PARALLEL_BUILD_THRESHOLD:
            return 1
        workers = min(cores, 8)
    if workers < 1:
        raise ConfigurationError(f"need workers >= 1, got {workers}")
    return min(workers, max(1, num_scenarios))


def _build_chunk(args):
    """Worker entry point: build a contiguous scenario slice into a fresh
    table and return it with the table's exported entries, the worker's
    instrumentation delta and its trace spans.

    Counters (``runs_built``) are accumulated *in the worker* and shipped
    back as an :func:`repro.obs.delta_since` delta — the parent folds them
    into its own :class:`~repro.obs.Instrumentation` so parallel and serial
    builds report identical totals.  (``views_interned`` is deliberately
    *not* counted here: worker tables are private and re-interned by the
    parent, which counts the merged total.)  Spans are exported relative to
    the chunk span's start so the parent can graft them into its timeline.
    """
    scenarios, horizon = args
    obs_before = obs.snapshot()
    mark = trace.TRACER.watermark()
    with trace.TRACER.span("build_chunk", scenarios=len(scenarios)) as chunk_span:
        table = ViewTable()
        runs = [
            build_run(config, pattern, horizon, table)
            for config, pattern in scenarios
        ]
        obs.count("runs_built", len(runs))
    spans = trace.export_spans(trace.TRACER.collect(mark))
    base = chunk_span.start if spans else 0.0
    for exported in spans:
        exported["start"] = float(exported["start"]) - base
    return table.export_entries(), runs, obs.delta_since(obs_before), spans


def _graft_offset(build_span) -> float:
    """Timeline offset for grafting worker spans under *build_span*.

    Worker spans are exported relative to their chunk's start, so the
    graft must shift them to the parent build span's start.  When the
    tracer dropped the parent span (tracing toggled mid-build, or the
    ring buffer rejected it) the yielded null span has no ``start``
    attribute — falling back to ``0.0`` would pin every worker timeline
    to the tracer epoch, corrupting Chrome-trace exports.  Fall back to
    the tracer clock instead: "now" is when the graft happens, which at
    least keeps worker spans in the present.
    """
    start = getattr(build_span, "start", None)
    if start is None:
        return _time.perf_counter() - trace.TRACER.epoch
    return float(start)


def _build_runs_parallel(
    scenarios: List[Tuple[InitialConfiguration, FailurePattern]],
    horizon: int,
    table: ViewTable,
    workers: int,
) -> List[Run]:
    """Build runs across *workers* processes with a deterministic merge.

    Scenarios are split into contiguous chunks (preserving enumeration
    order); each worker interns into its own :class:`ViewTable`, and the
    parent replays every worker table into the shared *table* in chunk
    order.  View ids are assigned by global first appearance — exactly the
    serial builder's assignment — so the merged system is identical,
    view-id for view-id, to a serial enumeration.
    """
    chunk_count = min(len(scenarios), workers * 4)
    base, extra = divmod(len(scenarios), chunk_count)
    chunks = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        chunks.append(scenarios[start:start + size])
        start += size
    with trace.span(
        "parallel_build", workers=workers, chunks=chunk_count
    ) as build_span:
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(
                _build_chunk, [(chunk, horizon) for chunk in chunks]
            )
        parent_id = trace.TRACER.current_span_id()
        offset = _graft_offset(build_span)
        runs: List[Run] = []
        for entries, chunk_runs, worker_delta, worker_spans in results:
            obs.merge_delta(worker_delta)
            trace.TRACER.graft(
                worker_spans, parent_id=parent_id, offset=offset
            )
            mapping = merge_entries(table, entries)
            for run in chunk_runs:
                run.views = [
                    tuple(mapping[view] for view in row) for row in run.views
                ]
                runs.append(run)
    return runs


def build_system(
    adversary: Adversary,
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    table: Optional[ViewTable] = None,
    workers: Optional[int] = None,
) -> System:
    """Enumerate the system of full-information runs for *adversary*.

    Args:
        adversary: Supplies ``(n, t, horizon)`` and the failure patterns.
        configs: Initial configurations to include; defaults to all ``2**n``.
        table: View table to intern into; defaults to a fresh one.  Supplying
            a shared table lets several systems (e.g. crash and omission
            variants of the same parameters) share state ids.
        workers: Number of processes for run construction.  ``None`` picks
            automatically (serial below :data:`PARALLEL_BUILD_THRESHOLD`
            scenarios, or on single-core machines; the
            ``REPRO_BUILD_WORKERS`` env var overrides).  The parallel path
            produces a system identical to the serial one — same run order,
            same view ids.

    Returns:
        The enumerated :class:`System`.
    """
    n, t, horizon = adversary.n, adversary.t, adversary.horizon
    if table is None:
        table = ViewTable()
    if configs is None:
        config_list = list(all_configurations(n))
    else:
        config_list = list(configs)
        for config in config_list:
            if config.n != n:
                raise ConfigurationError(
                    f"configuration {config} has n={config.n}, expected {n}"
                )
    patterns = list(adversary.patterns())
    for pattern in patterns:
        pattern.validate(n, t)
    scenarios = [
        (config, pattern)
        for config in config_list
        for pattern in patterns
    ]
    workers = _resolve_workers(workers, len(scenarios))
    views_before = len(table)
    with obs.stage("build_system"), trace.span(
        "build_system",
        mode=None if adversary.mode is None else adversary.mode.value,
        n=n,
        t=t,
        horizon=horizon,
        scenarios=len(scenarios),
        workers=workers,
    ) as build_span:
        if workers > 1:
            # Workers count runs_built themselves (folded back by
            # _build_runs_parallel), so the parent must not recount.
            runs = _build_runs_parallel(scenarios, horizon, table, workers)
        else:
            with trace.span("enumerate_runs", scenarios=len(scenarios)):
                runs = [
                    build_run(config, pattern, horizon, table)
                    for config, pattern in scenarios
                ]
            obs.count("runs_built", len(runs))
        with trace.span("index_system", runs=len(runs)):
            system = System(n, t, horizon, runs, table, adversary.mode)
        build_span.set("views_interned", len(table) - views_before)
    obs.count("views_interned", len(table) - views_before)
    return system


def _remap_run_prefix(
    old_run: Run,
    old_table: ViewTable,
    new_table: ViewTable,
    memo: Dict[ViewId, ViewId],
) -> List[List[ViewId]]:
    """Re-intern *old_run*'s view rows into *new_table*, time-major.

    *memo* maps old view ids to new ones and is shared across all runs of
    an extension, so views common to several prefixes are translated once.
    Walking rows oldest-first guarantees every referenced id (the owner's
    previous view, the senders' carried views — all one time step earlier)
    is already in the memo when an unseen view arrives, and reproduces the
    exact first-appearance interning order of a fresh build.

    Rows come back as lists: each extended run tuples its own copies, so
    sibling runs sharing a prefix do not alias row objects — a fresh build
    never aliases across runs, and aliasing would make the extended
    system's pickle diverge byte-wise from a fresh one.
    """
    rows: List[List[ViewId]] = []
    for row in old_run.views:
        new_row = []
        for old_id in row:
            new_id = memo.get(old_id)
            if new_id is None:
                info = old_table.info(old_id)
                if info.previous is None:
                    new_id = new_table.leaf(info.processor, info.initial_value)
                else:
                    new_id = new_table.intern_node(
                        memo[info.previous],
                        tuple((s, memo[sv]) for s, sv in info.heard_from),
                    )
                memo[old_id] = new_id
            new_row.append(new_id)
        rows.append(new_row)
    return rows


def extend_system(system: System, adversary: Adversary) -> System:
    """Grow *system* by one round: the horizon-``h+1`` system of *adversary*.

    Instead of re-simulating every scenario from time 0, each new scenario
    is resolved to the horizon-``h`` run it shares its first ``h`` rounds
    with — the run of the *truncated* pattern (see
    :func:`repro.model.failures.truncate_pattern`) — whose view rows are
    re-interned into the new table and extended by a single round.  The
    per-scenario cost is one round of message filtering plus an amortized
    prefix remap (each distinct horizon-``h`` run is remapped once, however
    many extended scenarios share it), instead of ``h+1`` rounds of
    simulation.

    The result is **identical** to ``build_system(adversary)`` — same run
    order, same view-id assignment, same deliveries — because scenarios are
    walked in the fresh builder's enumeration order and views are interned
    time-major per run, which is exactly the fresh builder's
    first-appearance order (scenarios sharing a truncation have identical
    prefix rows, so re-interning them is a no-op past the first).

    Returns a **new** :class:`System`; *system* and its caches are left
    untouched.  When *system* carries a built chunked index, the new
    system's index is pre-seeded via
    :meth:`repro.model.chunked.ChunkedIndex.extend_points`.
    """
    n, t, new_horizon = adversary.n, adversary.t, adversary.horizon
    if (n, t) != (system.n, system.t):
        raise ConfigurationError(
            f"adversary is (n={n}, t={t}) but system is "
            f"(n={system.n}, t={system.t})"
        )
    if new_horizon != system.horizon + 1:
        raise ConfigurationError(
            f"can only extend horizon {system.horizon} to "
            f"{system.horizon + 1}, adversary has horizon {new_horizon}"
        )
    if adversary.mode is not system.mode:
        raise ConfigurationError(
            f"adversary mode {adversary.mode} != system mode {system.mode}"
        )
    patterns = list(adversary.patterns())
    for pattern in patterns:
        pattern.validate(n, t)
    config_list = list(all_configurations(n))
    # Everything that depends only on the pattern — its observable
    # truncation, who hears whom in the new round, the nonfaulty set — is
    # hoisted out of the config loop: each pattern recurs once per
    # configuration, so computing these per scenario would redo the work
    # ``len(config_list)`` times over.
    per_pattern = []
    for pattern in patterns:
        truncated = truncate_pattern(pattern, system.horizon, n)
        senders_by_receiver = [
            tuple(
                sender
                for sender in range(n)
                if sender != receiver
                and pattern.delivered(sender, receiver, new_horizon)
            )
            for receiver in range(n)
        ]
        per_pattern.append(
            (pattern, truncated, senders_by_receiver, pattern.nonfaulty(n))
        )
    table = ViewTable()
    memo: Dict[ViewId, ViewId] = {}
    prefix_cache: Dict[int, List[List[ViewId]]] = {}
    old_table = system.table
    runs: List[Run] = []
    with obs.stage("extend_system"), trace.span(
        "extend_system",
        mode=None if adversary.mode is None else adversary.mode.value,
        n=n,
        t=t,
        horizon=new_horizon,
        scenarios=len(config_list) * len(patterns),
    ) as build_span:
        for config in config_list:
            for pattern, truncated, senders_by_receiver, nonfaulty in (
                per_pattern
            ):
                old_index = system._scenario_index.get((config, truncated))
                if old_index is None:
                    raise ConfigurationError(
                        f"cannot extend: scenario {config} / {truncated} "
                        f"(truncation of {pattern}) not in the base system"
                    )
                rows = prefix_cache.get(old_index)
                if rows is None:
                    rows = _remap_run_prefix(
                        system.runs[old_index], old_table, table, memo
                    )
                    prefix_cache[old_index] = rows
                current = rows[-1]
                delivered_per_receiver: List[FrozenSet[ProcessorId]] = []
                next_views: List[ViewId] = []
                for receiver in range(n):
                    heard: Dict[ProcessorId, ViewId] = {
                        sender: current[sender]
                        for sender in senders_by_receiver[receiver]
                    }
                    delivered_per_receiver.append(frozenset(heard))
                    next_views.append(table.extend(current[receiver], heard))
                old_run = system.runs[old_index]
                # Per-run copies of shared prefix structures: a fresh build
                # never aliases views/deliveries/nonfaulty across runs, and
                # byte-level pickle parity depends on the same object graph.
                runs.append(
                    Run(
                        config=config,
                        pattern=pattern,
                        horizon=new_horizon,
                        views=[tuple(row) for row in rows]
                        + [tuple(next_views)],
                        nonfaulty=frozenset(set(nonfaulty)),
                        deliveries=[
                            tuple(frozenset(set(s)) for s in round_deliveries)
                            for round_deliveries in old_run.deliveries
                        ]
                        + [tuple(delivered_per_receiver)],
                    )
                )
        obs.count("runs_extended", len(runs))
        with trace.span("index_system", runs=len(runs)):
            new_system = System(n, t, new_horizon, runs, table, adversary.mode)
        build_span.set("views_interned", len(table))
        build_span.set("prefix_runs_reused", len(prefix_cache))
    obs.count("views_interned", len(table))
    old_chunked = system._chunked_index
    if old_chunked is not None:
        new_system._chunked_index = old_chunked.extend_points(new_system)
    return new_system
