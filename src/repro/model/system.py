"""Systems: the full set of runs used to interpret knowledge formulas.

A *system* ``R`` (paper, Section 2.3) is a set of runs; knowledge at a point
``(r, m)`` quantifies over all points of the system at which the processor
has the same local state.  This module provides:

* :class:`System` — the enumerated run set for one ``(n, t, mode, horizon)``
  together with the state index that powers knowledge evaluation, and
* :class:`TruthAssignment` — a boolean valuation of all points of a system,
  the working currency of the formula evaluator.

Systems are immutable after construction; evaluation results are cached on
the system keyed by formula cache keys (see :mod:`repro.knowledge.formulas`).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .. import obs, trace
from ..errors import ConfigurationError, EvaluationError
from .adversary import Adversary
from .config import InitialConfiguration, all_configurations
from .failures import FailureMode, FailurePattern, ProcessorId
from .runs import Run, build_run
from .views import ViewId, ViewTable, merge_entries

Point = Tuple[int, int]  # (run index, time)
ScenarioKey = Tuple[InitialConfiguration, FailurePattern]


class TruthAssignment:
    """A boolean valuation over every point of a system.

    Stored as one list of booleans per run (indexed by time ``0..horizon``).
    Instances are treated as immutable by the evaluator; helpers that derive
    new assignments always allocate.
    """

    __slots__ = ("values",)

    def __init__(self, values: List[List[bool]]) -> None:
        self.values = values

    @classmethod
    def constant(cls, system: "System", value: bool) -> "TruthAssignment":
        return cls(
            [[value] * (system.horizon + 1) for _ in range(len(system.runs))]
        )

    @classmethod
    def from_predicate(
        cls, system: "System", predicate: Callable[[int, int], bool]
    ) -> "TruthAssignment":
        """Build from a ``(run_index, time) -> bool`` predicate."""
        return cls(
            [
                [predicate(run_index, time) for time in range(system.horizon + 1)]
                for run_index in range(len(system.runs))
            ]
        )

    def at(self, run_index: int, time: int) -> bool:
        return self.values[run_index][time]

    def count_true(self) -> int:
        return sum(sum(1 for v in row if v) for row in self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthAssignment):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:  # pragma: no cover - not hashed in practice
        return hash(tuple(tuple(row) for row in self.values))

    # -- pointwise algebra -------------------------------------------------

    def negate(self) -> "TruthAssignment":
        return TruthAssignment([[not v for v in row] for row in self.values])

    def conjoin(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [a and b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.values)
            ]
        )

    def disjoin(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [a or b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.values)
            ]
        )

    def implies(self, other: "TruthAssignment") -> "TruthAssignment":
        return TruthAssignment(
            [
                [(not a) or b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self.values, other.values)
            ]
        )

    def is_valid(self) -> bool:
        """True when the assignment holds at *every* point (the paper's
        ``R |= φ``)."""
        return all(all(row) for row in self.values)


class System:
    """An enumerated system of full-information runs.

    Attributes:
        n: Number of processors.
        t: Fault bound used during enumeration.
        mode: Failure mode of the adversary (``None`` for a purely
            failure-free system).
        horizon: Times ``0..horizon`` exist in every run.
        runs: The run list; order is deterministic.
        table: The shared view-interning table.
    """

    def __init__(
        self,
        n: int,
        t: int,
        horizon: int,
        runs: Sequence[Run],
        table: ViewTable,
        mode: Optional[FailureMode],
    ) -> None:
        if not runs:
            raise ConfigurationError("a system needs at least one run")
        self.n = n
        self.t = t
        self.horizon = horizon
        self.runs: List[Run] = list(runs)
        self.table = table
        self.mode = mode
        # state index: view id -> points sharing that local state.  View ids
        # embed processor and time, so one map covers all processors.
        self._state_index: Dict[ViewId, List[Point]] = {}
        self._scenario_index: Dict[ScenarioKey, int] = {}
        for run_index, run in enumerate(self.runs):
            key = run.scenario_key()
            if key in self._scenario_index:
                raise ConfigurationError(
                    f"duplicate scenario in system: {key[0]} / {key[1]}"
                )
            self._scenario_index[key] = run_index
            for time in range(horizon + 1):
                for processor in range(n):
                    view = run.view(processor, time)
                    self._state_index.setdefault(view, []).append(
                        (run_index, time)
                    )
        self._formula_cache: Dict[object, TruthAssignment] = {}
        self._nonrigid_cache: Dict[object, List[List[FrozenSet[int]]]] = {}

    # -- structure ---------------------------------------------------------

    def points(self) -> Iterator[Point]:
        """All points ``(run_index, time)`` of the system."""
        for run_index in range(len(self.runs)):
            for time in range(self.horizon + 1):
                yield (run_index, time)

    def num_points(self) -> int:
        return len(self.runs) * (self.horizon + 1)

    def run(self, run_index: int) -> Run:
        return self.runs[run_index]

    def same_state_points(self, view: ViewId) -> List[Point]:
        """All points at which the view's owner has exactly this state."""
        return self._state_index.get(view, [])

    def run_index_for(
        self, config: InitialConfiguration, pattern: FailurePattern
    ) -> int:
        """Index of the run determined by a scenario (config, pattern)."""
        try:
            return self._scenario_index[(config, pattern)]
        except KeyError:
            raise EvaluationError(
                f"scenario not present in system: {config} / {pattern}"
            ) from None

    def scenarios(self) -> List[ScenarioKey]:
        """The (config, pattern) pairs of all runs, in run order."""
        return [run.scenario_key() for run in self.runs]

    def occurring_views(self) -> Iterator[ViewId]:
        """All view ids that occur at some point of the system."""
        return iter(self._state_index)

    # -- caches ------------------------------------------------------------

    def cached_evaluation(
        self, key: object, compute: Callable[[], TruthAssignment]
    ) -> TruthAssignment:
        """Memoize a formula evaluation under *key*."""
        existing = self._formula_cache.get(key)
        if existing is not None:
            obs.count("formula_cache_hits")
            return existing
        obs.count("formula_cache_misses")
        with obs.stage("formula_eval"), trace.span(
            "formula_eval", key=_short_key(key)
        ):
            result = compute()
        self._formula_cache[key] = result
        return result

    def cached_nonrigid(
        self, key: object, compute: Callable[[], List[List[FrozenSet[int]]]]
    ) -> List[List[FrozenSet[int]]]:
        """Memoize a nonrigid set's member matrix under *key*."""
        existing = self._nonrigid_cache.get(key)
        if existing is not None:
            return existing
        result = compute()
        self._nonrigid_cache[key] = result
        return result

    def clear_caches(self) -> None:
        """Drop all memoized evaluations (mainly for tests)."""
        self._formula_cache.clear()
        self._nonrigid_cache.clear()


def _short_key(key: object, limit: int = 96) -> str:
    """A bounded textual form of a structural cache key for span labels."""
    text = repr(key)
    return text if len(text) <= limit else text[: limit - 3] + "..."


#: Minimum scenario count before the auto worker policy considers forking.
PARALLEL_BUILD_THRESHOLD = 20000


def _resolve_workers(workers: Optional[int], num_scenarios: int) -> int:
    """How many processes to enumerate with (1 = serial).

    Explicit *workers* wins; otherwise the ``REPRO_BUILD_WORKERS`` env var;
    otherwise auto — parallel only when the scenario space is large enough
    (:data:`PARALLEL_BUILD_THRESHOLD`) to amortize process startup and
    result pickling, and the machine has more than one core.
    """
    if workers is None:
        env = os.environ.get("REPRO_BUILD_WORKERS")
        if env:
            workers = int(env)
    if workers is None:
        cores = os.cpu_count() or 1
        if cores < 2 or num_scenarios < PARALLEL_BUILD_THRESHOLD:
            return 1
        workers = min(cores, 8)
    if workers < 1:
        raise ConfigurationError(f"need workers >= 1, got {workers}")
    return min(workers, max(1, num_scenarios))


def _build_chunk(args):
    """Worker entry point: build a contiguous scenario slice into a fresh
    table and return it with the table's exported entries, the worker's
    instrumentation delta and its trace spans.

    Counters (``runs_built``) are accumulated *in the worker* and shipped
    back as an :func:`repro.obs.delta_since` delta — the parent folds them
    into its own :class:`~repro.obs.Instrumentation` so parallel and serial
    builds report identical totals.  (``views_interned`` is deliberately
    *not* counted here: worker tables are private and re-interned by the
    parent, which counts the merged total.)  Spans are exported relative to
    the chunk span's start so the parent can graft them into its timeline.
    """
    scenarios, horizon = args
    obs_before = obs.snapshot()
    mark = trace.TRACER.watermark()
    with trace.TRACER.span("build_chunk", scenarios=len(scenarios)) as chunk_span:
        table = ViewTable()
        runs = [
            build_run(config, pattern, horizon, table)
            for config, pattern in scenarios
        ]
        obs.count("runs_built", len(runs))
    spans = trace.export_spans(trace.TRACER.collect(mark))
    base = chunk_span.start if spans else 0.0
    for exported in spans:
        exported["start"] = float(exported["start"]) - base
    return table.export_entries(), runs, obs.delta_since(obs_before), spans


def _build_runs_parallel(
    scenarios: List[Tuple[InitialConfiguration, FailurePattern]],
    horizon: int,
    table: ViewTable,
    workers: int,
) -> List[Run]:
    """Build runs across *workers* processes with a deterministic merge.

    Scenarios are split into contiguous chunks (preserving enumeration
    order); each worker interns into its own :class:`ViewTable`, and the
    parent replays every worker table into the shared *table* in chunk
    order.  View ids are assigned by global first appearance — exactly the
    serial builder's assignment — so the merged system is identical,
    view-id for view-id, to a serial enumeration.
    """
    chunk_count = min(len(scenarios), workers * 4)
    base, extra = divmod(len(scenarios), chunk_count)
    chunks = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        chunks.append(scenarios[start:start + size])
        start += size
    with trace.span(
        "parallel_build", workers=workers, chunks=chunk_count
    ) as build_span:
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(
                _build_chunk, [(chunk, horizon) for chunk in chunks]
            )
        parent_id = trace.TRACER.current_span_id()
        offset = getattr(build_span, "start", 0.0)
        runs: List[Run] = []
        for entries, chunk_runs, worker_delta, worker_spans in results:
            obs.merge_delta(worker_delta)
            trace.TRACER.graft(
                worker_spans, parent_id=parent_id, offset=offset
            )
            mapping = merge_entries(table, entries)
            for run in chunk_runs:
                run.views = [
                    tuple(mapping[view] for view in row) for row in run.views
                ]
                runs.append(run)
    return runs


def build_system(
    adversary: Adversary,
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    table: Optional[ViewTable] = None,
    workers: Optional[int] = None,
) -> System:
    """Enumerate the system of full-information runs for *adversary*.

    Args:
        adversary: Supplies ``(n, t, horizon)`` and the failure patterns.
        configs: Initial configurations to include; defaults to all ``2**n``.
        table: View table to intern into; defaults to a fresh one.  Supplying
            a shared table lets several systems (e.g. crash and omission
            variants of the same parameters) share state ids.
        workers: Number of processes for run construction.  ``None`` picks
            automatically (serial below :data:`PARALLEL_BUILD_THRESHOLD`
            scenarios, or on single-core machines; the
            ``REPRO_BUILD_WORKERS`` env var overrides).  The parallel path
            produces a system identical to the serial one — same run order,
            same view ids.

    Returns:
        The enumerated :class:`System`.
    """
    n, t, horizon = adversary.n, adversary.t, adversary.horizon
    if table is None:
        table = ViewTable()
    if configs is None:
        config_list = list(all_configurations(n))
    else:
        config_list = list(configs)
        for config in config_list:
            if config.n != n:
                raise ConfigurationError(
                    f"configuration {config} has n={config.n}, expected {n}"
                )
    patterns = list(adversary.patterns())
    for pattern in patterns:
        pattern.validate(n, t)
    scenarios = [
        (config, pattern)
        for config in config_list
        for pattern in patterns
    ]
    workers = _resolve_workers(workers, len(scenarios))
    views_before = len(table)
    with obs.stage("build_system"), trace.span(
        "build_system",
        mode=None if adversary.mode is None else adversary.mode.value,
        n=n,
        t=t,
        horizon=horizon,
        scenarios=len(scenarios),
        workers=workers,
    ) as build_span:
        if workers > 1:
            # Workers count runs_built themselves (folded back by
            # _build_runs_parallel), so the parent must not recount.
            runs = _build_runs_parallel(scenarios, horizon, table, workers)
        else:
            with trace.span("enumerate_runs", scenarios=len(scenarios)):
                runs = [
                    build_run(config, pattern, horizon, table)
                    for config, pattern in scenarios
                ]
            obs.count("runs_built", len(runs))
        with trace.span("index_system", runs=len(runs)):
            system = System(n, t, horizon, runs, table, adversary.mode)
        build_span.set("views_interned", len(table) - views_before)
    obs.count("views_interned", len(table) - views_before)
    return system
