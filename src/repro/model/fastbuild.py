"""Arrays-first system construction: enumerate straight into numpy tables.

:func:`~repro.model.system.build_system` materializes every run as a
``Run`` object and interns views point by point through a Python dict —
fine for the object-graph consumers (protocol simulation, explanation
traces, incremental extension), but pure overhead for the evaluation-only
consumers (``serve`` forked builds, ``exec`` shards, the planner
prefetch), which immediately project the system down to
:class:`~repro.model.partition.SystemArrays` and never look at a ``Run``
again.  This module builds the *projection directly*:

* failure patterns become index tables — per-processor behaviour
  delivery matrices (tiny: one row per canonical behaviour) combined by
  digit arithmetic over the adversary's ``itertools.product`` order, so
  the full ``(patterns, horizon, n, n)`` delivery tensor is assembled by
  a handful of advanced-indexing ``&=`` passes instead of
  ``patterns × horizon × n²`` Python calls;
* view interning becomes a batched, time-major ``np.unique`` over
  per-round key matrices ``[prev, x_0 .. x_{n-1}]`` (``x_s = prev_s + 1``
  when sender ``s`` delivered, else 0) — injective for the view table's
  node keys, so deduplicating rows *is* interning;
* the table's dense first-appearance id order is recovered afterwards by
  ranking temp ids by first occurrence in the run-major scan — exactly
  the order ``build_system`` assigns ids in — which makes every emitted
  array **byte-identical** to ``SystemArrays.from_system`` on the
  object-graph build (asserted by ``tests/test_fastbuild.py``).

The fast path covers what the provider caches: exhaustive crash /
sending-omission / receive-omission adversaries over the full initial
configuration list, on the numpy backend.  Anything else returns
``None`` from :func:`try_build_arrays` and the caller falls back to the
object-graph build.  ``REPRO_ARRAYS_FASTBUILD=0`` disables the path.
"""

from __future__ import annotations

import itertools
import os
from typing import List, Optional

from .. import obs, trace
from . import chunked as _ck
from .failures import FailureMode

_FASTBUILD_FALSY = {"0", "false", "no", "off"}

#: Modes with a canonical exhaustive enumeration the fast path mirrors.
_SUPPORTED_MODES = (
    FailureMode.CRASH,
    FailureMode.OMISSION,
    FailureMode.RECEIVE_OMISSION,
)


def _np():
    return _ck._active_numpy


def fastbuild_enabled() -> bool:
    """Whether the arrays-first construction path is enabled (env gate)."""
    raw = os.environ.get("REPRO_ARRAYS_FASTBUILD", "1").strip().lower()
    return raw not in _FASTBUILD_FALSY


def supports(mode: FailureMode, n: int, t: int, horizon: int) -> bool:
    """Whether :func:`build_arrays` can handle this cell."""
    if _np() is None or not fastbuild_enabled():
        return False
    if mode not in _SUPPORTED_MODES:
        return False
    return n >= 2 and 0 <= t < n and horizon >= 1


def _subset_masks(n: int, processor: int, *, strict: bool):
    """Boolean membership rows for the adversary's subset enumeration.

    Row ``j`` marks the members of the ``j``-th subset of
    ``others = range(n) - {processor}`` in the adversary's order (sizes
    ascending, ``itertools.combinations`` within a size); ``strict``
    drops the full set (crash canonicalization).
    """
    np = _np()
    others = [p for p in range(n) if p != processor]
    top = len(others) if strict else len(others) + 1
    rows: List[List[bool]] = []
    for size in range(top):
        for combo in itertools.combinations(others, size):
            row = [False] * n
            for member in combo:
                row[member] = True
            rows.append(row)
    return np.asarray(rows, dtype=bool)


def _behavior_tables(mode: FailureMode, n: int, horizon: int, processor: int):
    """Per-behaviour delivery tables for one faulty *processor*.

    Returns ``(send_ok, recv_ok)`` — each either ``None`` (that side
    never drops anything in this mode) or a ``(B, horizon, n)`` bool
    array, row ``b`` matching the ``b``-th behaviour of the exhaustive
    adversary's ``behaviors_for(processor)`` order.  ``send_ok[b, m-1, r]``
    says the round-``m`` message to ``r`` is sent; ``recv_ok[b, m-1, s]``
    says the round-``m`` message from ``s`` is received.  The processor's
    own column is irrelevant (self-delivery is forced later).
    """
    np = _np()
    if mode is FailureMode.CRASH:
        members = _subset_masks(n, processor, strict=True)
        num_subsets = members.shape[0]
        count = horizon * num_subsets
        send_ok = np.empty((count, horizon, n), dtype=bool)
        for crash_round in range(1, horizon + 1):
            base = (crash_round - 1) * num_subsets
            block = send_ok[base : base + num_subsets]
            block[:, : crash_round - 1, :] = True
            block[:, crash_round - 1, :] = members
            block[:, crash_round:, :] = False
        return send_ok, None
    # Omission-family: subsets per round (empty included), product over
    # rounds with the all-empty assignment (product index 0) skipped.
    members = _subset_masks(n, processor, strict=False)
    num_subsets = members.shape[0]
    count = num_subsets**horizon - 1
    indices = np.arange(1, num_subsets**horizon, dtype=np.int64)
    ok = np.empty((count, horizon, n), dtype=bool)
    for round_number in range(1, horizon + 1):
        digit = (
            indices // (num_subsets ** (horizon - round_number))
        ) % num_subsets
        ok[:, round_number - 1, :] = ~members[digit]
    if mode is FailureMode.RECEIVE_OMISSION:
        return None, ok
    return ok, None


def _pattern_tensors(mode: FailureMode, n: int, t: int, horizon: int):
    """Delivery tensor and nonfaulty matrix over the full pattern list.

    Returns ``(deliveries, nonfaulty)`` with ``deliveries`` of shape
    ``(patterns, horizon, n, n)`` indexed ``[pattern, m-1, receiver,
    sender]`` (diagonal not yet forced) and ``nonfaulty`` of shape
    ``(patterns, n)``, both in the exhaustive adversary's pattern order:
    failure-free first, then faulty sets of size ``1..t`` with the
    behaviour product's last position varying fastest.
    """
    np = _np()
    send_tables = []
    recv_tables = []
    for processor in range(n):
        send_ok, recv_ok = _behavior_tables(mode, n, horizon, processor)
        send_tables.append(send_ok)
        recv_tables.append(recv_ok)
    probe = send_tables[0] if send_tables[0] is not None else recv_tables[0]
    behaviors_per_proc = probe.shape[0]

    num_patterns = 1
    for size in range(1, t + 1):
        combos = len(list(itertools.combinations(range(n), size)))
        num_patterns += combos * behaviors_per_proc**size
    deliveries = np.ones((num_patterns, horizon, n, n), dtype=bool)
    nonfaulty = np.ones((num_patterns, n), dtype=bool)

    cursor = 1
    for size in range(1, t + 1):
        block = behaviors_per_proc**size
        for combo in itertools.combinations(range(n), size):
            rows = slice(cursor, cursor + block)
            nonfaulty[rows, list(combo)] = False
            local = np.arange(block, dtype=np.int64)
            for position, processor in enumerate(combo):
                digit = (
                    local // (behaviors_per_proc ** (size - 1 - position))
                ) % behaviors_per_proc
                send_ok = send_tables[processor]
                if send_ok is not None:
                    # Faulty sender: AND its per-receiver sends into the
                    # sender column of every round.
                    deliveries[rows, :, :, processor] &= send_ok[digit]
                recv_ok = recv_tables[processor]
                if recv_ok is not None:
                    deliveries[rows, :, processor, :] &= recv_ok[digit]
            cursor += block
    return deliveries, nonfaulty


def build_arrays(mode: FailureMode, n: int, t: int, horizon: int):
    """The cell's :class:`~repro.model.partition.SystemArrays`, built
    without ever materializing runs or a view table.

    Byte-identical to ``SystemArrays.from_system`` on the object-graph
    build of the same cell (same dtypes, same dense view-id order, same
    meta).  Raises :class:`~repro.errors.ConfigurationError` via the
    partition layer only on unsupported backends; call :func:`supports`
    first.
    """
    from .partition import SystemArrays

    np = _np()
    with obs.stage("system_fastbuild"), trace.span(
        "system_fastbuild", mode=mode.value, n=n, t=t, horizon=horizon
    ):
        pattern_deliv, pattern_nf = _pattern_tensors(mode, n, t, horizon)
        num_patterns = pattern_deliv.shape[0]
        configs = np.asarray(
            list(itertools.product((0, 1), repeat=n)), dtype=np.int8
        )
        num_configs = configs.shape[0]
        num_runs = num_configs * num_patterns

        # Runs are config-outer × pattern-inner, matching build_system's
        # scenario order.
        deliveries = np.tile(pattern_deliv, (num_configs, 1, 1, 1))
        nonfaulty = np.tile(pattern_nf, (num_configs, 1))
        init = np.repeat(configs, num_patterns, axis=0)

        # -- batched interning: temp ids per round, renumbered below ---
        procs = np.arange(n)
        # Leaf temp ids: (processor, value) -> 2p + v.  With the full
        # configuration list every pair occurs.
        temp_views = np.empty((num_runs, horizon + 1, n), dtype=np.int64)
        temp_views[:, 0, :] = 2 * procs[None, :] + init
        owner_parts = [np.repeat(procs, 2)]
        vtime_parts = [np.zeros(2 * n, dtype=np.int64)]
        prev_parts = [np.full(2 * n, -1, dtype=np.int64)]
        offset = 2 * n
        owner_of_temp = np.concatenate(owner_parts)

        for round_number in range(1, horizon + 1):
            prev_ids = temp_views[:, round_number - 1, :]
            delivered = deliveries[:, round_number - 1, :, :].copy()
            delivered[:, procs, procs] = False
            # Key rows [prev_p, x_0 .. x_{n-1}]: x_s = prev_s + 1 when s
            # delivered to p, else 0 — a bijective encoding of the view
            # table's ("node", previous, entries) keys.
            keys = np.empty((num_runs, n, n + 1), dtype=np.int64)
            keys[:, :, 0] = prev_ids
            keys[:, :, 1:] = (prev_ids + 1)[:, None, :] * delivered
            flat = np.ascontiguousarray(keys.reshape(num_runs * n, n + 1))
            void = flat.view(
                np.dtype((np.void, flat.dtype.itemsize * flat.shape[1]))
            ).ravel()
            _, first_index, inverse = np.unique(
                void, return_index=True, return_inverse=True
            )
            unique_rows = flat[first_index]
            temp_views[:, round_number, :] = (offset + inverse).reshape(
                num_runs, n
            )
            prev_round = unique_rows[:, 0]
            owner_parts.append(owner_of_temp[prev_round])
            vtime_parts.append(
                np.full(unique_rows.shape[0], round_number, dtype=np.int64)
            )
            prev_parts.append(prev_round)
            offset += unique_rows.shape[0]
            owner_of_temp = np.concatenate(owner_parts)

        owner_temp = owner_of_temp
        vtime_temp = np.concatenate(vtime_parts)
        prev_temp = np.concatenate(prev_parts)

        # -- dense renumbering by first appearance ---------------------
        # build_system assigns table ids in creation order: run-major,
        # time-major within a run, processor-minor within a time — i.e.
        # first appearance in the raveled (runs, horizon+1, n) scan.
        flat_views = temp_views.reshape(-1)
        occurring, first_pos = np.unique(flat_views, return_index=True)
        rank = np.argsort(first_pos, kind="stable")
        temp_of_final = occurring[rank]
        num_views = temp_of_final.shape[0]
        perm = np.full(offset, -1, dtype=np.int64)
        perm[temp_of_final] = np.arange(num_views)

        views = perm[temp_views].astype(np.int32)
        owner = owner_temp[temp_of_final].astype(np.int32)
        vtime = vtime_temp[temp_of_final].astype(np.int16)
        prev_of_final = prev_temp[temp_of_final]
        prev = np.where(
            prev_of_final >= 0,
            perm[np.maximum(prev_of_final, 0)],
            -1,
        ).astype(np.int32)

        deliveries[:, :, procs, procs] = True
        occurs = np.ones(num_views, dtype=bool)

        obs.count("system_fast_builds")
        return SystemArrays(
            mode=mode.value,
            n=n,
            t=t,
            horizon=horizon,
            num_views=num_views,
            views=views,
            owner=owner,
            vtime=vtime,
            prev=prev,
            init=init,
            nonfaulty=nonfaulty,
            deliveries=deliveries,
            occurs=occurs,
        )


def try_build_arrays(
    mode: FailureMode, n: int, t: int, horizon: int
) -> Optional[object]:
    """:func:`build_arrays` when supported, else ``None`` (no raise)."""
    if not supports(mode, n, t, horizon):
        return None
    return build_arrays(mode, n, t, horizon)
