"""Convenience constructors for enumerated systems.

These wrap :func:`repro.model.system.build_system` with the adversaries from
:mod:`repro.model.adversary` behind the layered
:class:`~repro.model.provider.SystemProvider` cache, so that tests and
experiments touching the same ``(mode, n, t, horizon)`` parameters share one
enumeration — in-process through a bounded LRU, and across processes through
the versioned on-disk cache under ``.repro_cache/``.

Sizing guidance (see DESIGN.md):

* crash mode is exhaustive and comfortable up to roughly ``n=5, t=2,
  horizon=4``;
* omission mode is exhaustive only for small parameters (``n=3..4, t=1,
  horizon=3``); beyond that use a restricted or sampled adversary and treat
  knowledge results as approximations (DESIGN.md explains in which direction
  each approximation errs).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from .. import trace
from .adversary import ExplicitAdversary
from .config import InitialConfiguration
from .failures import FailureMode, FailurePattern
from .provider import PROVIDER
from .system import System, build_system


def default_horizon(t: int) -> int:
    """The library's default horizon, ``t + 2``.

    Decisions in the paper's protocols happen by time ``t + 1``; one extra
    round keeps the post-decision relay visible and gives temporal operators
    a nontrivial future at the decision time.
    """
    return t + 2


def crash_system(
    n: int,
    t: int,
    horizon: Optional[int] = None,
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
) -> System:
    """The exhaustive crash-mode system for ``(n, t, horizon)``."""
    horizon = default_horizon(t) if horizon is None else horizon
    return PROVIDER.get(
        FailureMode.CRASH,
        n,
        t,
        horizon,
        configs=configs,
        use_cache=use_cache,
        workers=workers,
    )


def omission_system(
    n: int,
    t: int,
    horizon: Optional[int] = None,
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
) -> System:
    """The exhaustive omission-mode system for ``(n, t, horizon)``.

    Exponential in ``(n - 1) * horizon`` per faulty processor — intended for
    small parameters only.
    """
    horizon = default_horizon(t) if horizon is None else horizon
    return PROVIDER.get(
        FailureMode.OMISSION,
        n,
        t,
        horizon,
        configs=configs,
        use_cache=use_cache,
        workers=workers,
    )


def system_for(
    mode: FailureMode,
    n: int,
    t: int,
    horizon: Optional[int] = None,
    **kwargs,
) -> System:
    """Factory dispatching on *mode* (exhaustive adversaries)."""
    if mode is FailureMode.CRASH:
        return crash_system(n, t, horizon, **kwargs)
    return omission_system(n, t, horizon, **kwargs)


def restricted_system(
    mode: FailureMode,
    n: int,
    t: int,
    horizon: int,
    patterns: Sequence[FailurePattern],
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    include_failure_free: bool = True,
) -> System:
    """A sub-system over an explicit pattern family (never cached).

    Knowledge evaluated over a sub-system is an *over*-approximation (fewer
    runs means fewer indistinguishable alternatives, hence more knowledge);
    dually, the *failure* of a continual-common-knowledge test in a
    sub-system transfers soundly to the full system (DESIGN.md §2).  The
    Proposition 6.3 experiment relies on this direction.
    """
    adversary = ExplicitAdversary(
        n,
        t,
        horizon,
        patterns,
        mode=mode,
        include_failure_free=include_failure_free,
    )
    with trace.span(
        "restricted_system", mode=mode.value, n=n, t=t, horizon=horizon,
        patterns=len(patterns),
    ):
        return build_system(adversary, configs=configs)


def clear_system_cache(*, disk: bool = False) -> Dict[str, int]:
    """Drop the process-wide system cache (mainly for tests).

    Returns eviction statistics — see
    :meth:`~repro.model.provider.SystemProvider.clear`.
    """
    return PROVIDER.clear(disk=disk)


def system_cache_info() -> Dict[str, object]:
    """Hit/miss/size statistics for the process-wide system cache."""
    return PROVIDER.cache_info()
