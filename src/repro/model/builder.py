"""Convenience constructors for enumerated systems.

These wrap :func:`repro.model.system.build_system` with the adversaries from
:mod:`repro.model.adversary` and provide a process-wide cache so that tests
and experiments touching the same ``(mode, n, t, horizon)`` parameters share
one enumeration.

Sizing guidance (see DESIGN.md):

* crash mode is exhaustive and comfortable up to roughly ``n=5, t=2,
  horizon=4``;
* omission mode is exhaustive only for small parameters (``n=3..4, t=1,
  horizon=3``); beyond that use a restricted or sampled adversary and treat
  knowledge results as approximations (DESIGN.md explains in which direction
  each approximation errs).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from .adversary import (
    Adversary,
    ExhaustiveCrashAdversary,
    ExhaustiveOmissionAdversary,
    ExplicitAdversary,
)
from .config import InitialConfiguration
from .failures import FailureMode, FailurePattern
from .system import System, build_system

_CacheKey = Tuple[FailureMode, int, int, int]
_SYSTEM_CACHE: Dict[_CacheKey, System] = {}


def default_horizon(t: int) -> int:
    """The library's default horizon, ``t + 2``.

    Decisions in the paper's protocols happen by time ``t + 1``; one extra
    round keeps the post-decision relay visible and gives temporal operators
    a nontrivial future at the decision time.
    """
    return t + 2


def crash_system(
    n: int,
    t: int,
    horizon: Optional[int] = None,
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    use_cache: bool = True,
) -> System:
    """The exhaustive crash-mode system for ``(n, t, horizon)``."""
    horizon = default_horizon(t) if horizon is None else horizon
    key = (FailureMode.CRASH, n, t, horizon)
    if use_cache and configs is None and key in _SYSTEM_CACHE:
        return _SYSTEM_CACHE[key]
    system = build_system(
        ExhaustiveCrashAdversary(n, t, horizon), configs=configs
    )
    if use_cache and configs is None:
        _SYSTEM_CACHE[key] = system
    return system


def omission_system(
    n: int,
    t: int,
    horizon: Optional[int] = None,
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    use_cache: bool = True,
) -> System:
    """The exhaustive omission-mode system for ``(n, t, horizon)``.

    Exponential in ``(n - 1) * horizon`` per faulty processor — intended for
    small parameters only.
    """
    horizon = default_horizon(t) if horizon is None else horizon
    key = (FailureMode.OMISSION, n, t, horizon)
    if use_cache and configs is None and key in _SYSTEM_CACHE:
        return _SYSTEM_CACHE[key]
    system = build_system(
        ExhaustiveOmissionAdversary(n, t, horizon), configs=configs
    )
    if use_cache and configs is None:
        _SYSTEM_CACHE[key] = system
    return system


def system_for(
    mode: FailureMode,
    n: int,
    t: int,
    horizon: Optional[int] = None,
    **kwargs,
) -> System:
    """Factory dispatching on *mode* (exhaustive adversaries)."""
    if mode is FailureMode.CRASH:
        return crash_system(n, t, horizon, **kwargs)
    return omission_system(n, t, horizon, **kwargs)


def restricted_system(
    mode: FailureMode,
    n: int,
    t: int,
    horizon: int,
    patterns: Sequence[FailurePattern],
    *,
    configs: Optional[Iterable[InitialConfiguration]] = None,
    include_failure_free: bool = True,
) -> System:
    """A sub-system over an explicit pattern family.

    Knowledge evaluated over a sub-system is an *over*-approximation (fewer
    runs means fewer indistinguishable alternatives, hence more knowledge);
    dually, the *failure* of a continual-common-knowledge test in a
    sub-system transfers soundly to the full system (DESIGN.md §2).  The
    Proposition 6.3 experiment relies on this direction.
    """
    adversary = ExplicitAdversary(
        n,
        t,
        horizon,
        patterns,
        mode=mode,
        include_failure_free=include_failure_free,
    )
    return build_system(adversary, configs=configs)


def clear_system_cache() -> None:
    """Drop the process-wide system cache (mainly for tests)."""
    _SYSTEM_CACHE.clear()
