"""Runs of the full-information protocol.

A *run* (paper, Section 2.3) is the complete description of the system at
every time step: initial configuration, failure pattern and the resulting
message/state evolution.  Because full-information states are independent of
the decision function, one run object serves every ``FIP(Z, O)``; decisions
are layered on top by :mod:`repro.protocols.fip`.

Runs are built against a shared :class:`~repro.model.views.ViewTable` so that
identical local states across runs receive identical interned ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..errors import ConfigurationError
from .config import InitialConfiguration
from .failures import FailurePattern, ProcessorId
from .views import ViewId, ViewTable


@dataclass
class Run:
    """One run of the full-information protocol.

    Attributes:
        config: The initial configuration.
        pattern: The failure pattern (uniquely determines the run together
            with the configuration — paper, Section 2.3).
        horizon: Number of rounds simulated; points exist for times
            ``0..horizon``.
        views: ``views[m][i]`` is the interned view id of processor ``i`` at
            time ``m``.
        nonfaulty: The (time-independent, per the paper's convention for
            EBA) set of nonfaulty processors.
        deliveries: ``deliveries[m]`` is, for round ``m`` (1-based, stored at
            index ``m - 1``), a tuple over receivers of the frozen set of
            senders whose message arrived.
    """

    config: InitialConfiguration
    pattern: FailurePattern
    horizon: int
    views: List[Tuple[ViewId, ...]] = field(default_factory=list)
    nonfaulty: FrozenSet[ProcessorId] = frozenset()
    deliveries: List[Tuple[FrozenSet[ProcessorId], ...]] = field(
        default_factory=list
    )

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.config.n

    def view(self, processor: ProcessorId, time: int) -> ViewId:
        """Processor *processor*'s local state (view id) at *time*."""
        return self.views[time][processor]

    def is_nonfaulty(self, processor: ProcessorId) -> bool:
        """Whether *processor* is nonfaulty throughout this run."""
        return processor in self.nonfaulty

    def senders_to(
        self, receiver: ProcessorId, round_number: int
    ) -> FrozenSet[ProcessorId]:
        """Processors whose round-*round_number* message reached *receiver*
        (excluding *receiver* itself)."""
        return self.deliveries[round_number - 1][receiver]

    def scenario_key(self) -> Tuple[InitialConfiguration, FailurePattern]:
        """The (configuration, pattern) pair identifying corresponding runs.

        Two runs of different protocols *correspond* when they share this
        key (paper, Section 2.3).
        """
        return (self.config, self.pattern)

    def exists(self, value: int) -> bool:
        """The paper's run-level fact ∃value."""
        return self.config.exists(value)


def build_run(
    config: InitialConfiguration,
    pattern: FailurePattern,
    horizon: int,
    table: ViewTable,
) -> Run:
    """Execute the full-information protocol and record the resulting run.

    Every processor — faulty ones included — sends its current state to all
    others each round; the failure pattern filters which messages arrive.
    Crashed processors keep "receiving" in the model (their post-crash state
    is never observed by anyone, so this choice is inconsequential), which
    keeps the state evolution uniform.
    """
    n = config.n
    if horizon < 1:
        raise ConfigurationError(f"need horizon >= 1, got {horizon}")
    run = Run(config=config, pattern=pattern, horizon=horizon)
    run.nonfaulty = pattern.nonfaulty(n)

    current: List[ViewId] = [
        table.leaf(processor, config.value_of(processor))
        for processor in range(n)
    ]
    run.views.append(tuple(current))

    for round_number in range(1, horizon + 1):
        delivered_per_receiver: List[FrozenSet[ProcessorId]] = []
        next_views: List[ViewId] = []
        for receiver in range(n):
            heard: Dict[ProcessorId, ViewId] = {}
            for sender in range(n):
                if sender == receiver:
                    continue
                if pattern.delivered(sender, receiver, round_number):
                    heard[sender] = current[sender]
            delivered_per_receiver.append(frozenset(heard))
            next_views.append(table.extend(current[receiver], heard))
        run.deliveries.append(tuple(delivered_per_receiver))
        current = next_views
        run.views.append(tuple(current))
    return run
