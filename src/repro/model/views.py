"""Full-information views: canonical local states with hash-consing.

In a full-information protocol (paper, Section 2.4) each processor sends its
entire state to everyone in every round, so its local state at time ``m`` is
fully described by:

* its identity and initial value, and
* for each round ``1..m``, the set of processors it heard from together with
  the *sender's state at the previous time* carried by each message.

We represent this as a recursive *view* tree and intern every distinct view
into a :class:`ViewTable`, assigning it a small integer id.  Two points of
(possibly different) runs then have the same local state **iff** their view
ids are equal — an O(1) check that the knowledge machinery performs millions
of times.  Because a view embeds its depth (time) structurally, equal ids
also imply equal times, matching the paper's convention that the global
clock is part of the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.values import Value
from ..errors import ConfigurationError

ProcessorId = int
ViewId = int

#: Structural form of a view:
#:   leaf:     ("leaf", processor, initial_value)
#:   internal: ("node", previous_view_id, ((sender, sender_view_id), ...))
ViewKey = Tuple


@dataclass(frozen=True)
class ViewInfo:
    """Decoded metadata about an interned view.

    Attributes:
        view_id: The interned id.
        processor: Owner of the view.
        time: Depth of the view (0 for an initial state).
        initial_value: The owner's initial value.
        previous: Id of the owner's view one round earlier (``None`` at
            time 0).
        heard_from: Sorted tuple of ``(sender, sender_view_id)`` pairs for
            round-``time`` messages received (empty at time 0).
    """

    view_id: ViewId
    processor: ProcessorId
    time: int
    initial_value: Value
    previous: Optional[ViewId]
    heard_from: Tuple[Tuple[ProcessorId, ViewId], ...]

    @property
    def senders(self) -> FrozenSet[ProcessorId]:
        """The set of processors heard from in the most recent round."""
        return frozenset(sender for sender, _ in self.heard_from)


class ViewTable:
    """Interning table for full-information views.

    A single table is shared by all runs of a system so that identical local
    states across runs receive identical ids.  The table is append-only; ids
    are dense starting from 0.
    """

    def __init__(self) -> None:
        self._ids: Dict[ViewKey, ViewId] = {}
        self._info: List[ViewInfo] = []

    def __len__(self) -> int:
        return len(self._info)

    def leaf(self, processor: ProcessorId, initial_value: Value) -> ViewId:
        """Intern the time-0 view of *processor* with *initial_value*."""
        key: ViewKey = ("leaf", processor, initial_value)
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        view_id = len(self._info)
        self._ids[key] = view_id
        self._info.append(
            ViewInfo(
                view_id=view_id,
                processor=processor,
                time=0,
                initial_value=initial_value,
                previous=None,
                heard_from=(),
            )
        )
        return view_id

    def extend(
        self,
        previous: ViewId,
        heard_from: Dict[ProcessorId, ViewId],
    ) -> ViewId:
        """Intern the view obtained from *previous* after one more round.

        Args:
            previous: The owner's view id at the previous time.
            heard_from: Maps each sender whose round message was delivered to
                the sender's view id at the previous time.  The owner's own
                "message to itself" must *not* be included; its previous
                state is already carried by *previous*.
        """
        previous_info = self._info[previous]
        entries = tuple(sorted(heard_from.items()))
        for sender, sender_view in entries:
            sender_info = self._info[sender_view]
            if sender_info.time != previous_info.time:
                raise ConfigurationError(
                    "message carries a state from the wrong time: "
                    f"sender {sender} at time {sender_info.time}, "
                    f"receiver previous time {previous_info.time}"
                )
            if sender_info.processor != sender:
                raise ConfigurationError(
                    f"view {sender_view} does not belong to sender {sender}"
                )
        key: ViewKey = ("node", previous, entries)
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        view_id = len(self._info)
        self._ids[key] = view_id
        self._info.append(
            ViewInfo(
                view_id=view_id,
                processor=previous_info.processor,
                time=previous_info.time + 1,
                initial_value=previous_info.initial_value,
                previous=previous,
                heard_from=entries,
            )
        )
        return view_id

    def intern_node(
        self,
        previous: ViewId,
        entries: Tuple[Tuple[ProcessorId, ViewId], ...],
    ) -> ViewId:
        """Intern an internal view from pre-sorted ``(sender, view)`` pairs.

        Fast path for structure-preserving replays (incremental system
        extension remaps run prefixes through here): *entries* must already
        be sender-sorted and time/ownership-consistent, as any tuple taken
        from a :class:`ViewInfo` of another table and id-remapped is.  Ids
        assigned are identical to :meth:`extend` on the equivalent dict.
        """
        key: ViewKey = ("node", previous, entries)
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        previous_info = self._info[previous]
        view_id = len(self._info)
        self._ids[key] = view_id
        self._info.append(
            ViewInfo(
                view_id=view_id,
                processor=previous_info.processor,
                time=previous_info.time + 1,
                initial_value=previous_info.initial_value,
                previous=previous,
                heard_from=entries,
            )
        )
        return view_id

    def info(self, view_id: ViewId) -> ViewInfo:
        """Metadata for an interned view id."""
        return self._info[view_id]

    def export_entries(self) -> List[ViewKey]:
        """The structural keys of all views, in id order.

        Because the table is append-only and every internal node references
        only smaller ids, replaying these entries into a fresh table (see
        :func:`merge_entries`) reproduces the exact same id assignment —
        the property the on-disk system codec and the parallel-build merge
        both rely on.
        """
        entries: List[ViewKey] = []
        for info in self._info:
            if info.previous is None:
                entries.append(("leaf", info.processor, info.initial_value))
            else:
                entries.append(("node", info.previous, info.heard_from))
        return entries

    def time_of(self, view_id: ViewId) -> int:
        return self._info[view_id].time

    def processor_of(self, view_id: ViewId) -> ProcessorId:
        return self._info[view_id].processor

    def initial_value_of(self, view_id: ViewId) -> Value:
        return self._info[view_id].initial_value

    def history(self, view_id: ViewId) -> List[ViewId]:
        """The owner's views at times ``0..time`` (perfect recall).

        Full-information states determine their entire past; this helper
        materializes that chain, oldest first.
        """
        chain: List[ViewId] = []
        current: Optional[ViewId] = view_id
        while current is not None:
            chain.append(current)
            current = self._info[current].previous
        chain.reverse()
        return chain

    def known_values(self, view_id: ViewId) -> FrozenSet[Value]:
        """All initial values provably present from this view's perspective.

        A value is *known present* if it is the owner's own initial value or
        appears anywhere in the (recursively unfolded) received states.  This
        is the semantic core of facts like "processor i has learned that some
        processor started with 0".
        """
        return self._known_values_memo(view_id, {})

    def _known_values_memo(
        self, view_id: ViewId, memo: Dict[ViewId, FrozenSet[Value]]
    ) -> FrozenSet[Value]:
        cached = memo.get(view_id)
        if cached is not None:
            return cached
        info = self._info[view_id]
        values = {info.initial_value}
        if info.previous is not None:
            values |= self._known_values_memo(info.previous, memo)
        for _, sender_view in info.heard_from:
            values |= self._known_values_memo(sender_view, memo)
        result = frozenset(values)
        memo[view_id] = result
        return result

    def known_initial_values(
        self, view_id: ViewId
    ) -> Dict[ProcessorId, Value]:
        """Map of processors whose initial value is visible from this view."""
        result: Dict[ProcessorId, Value] = {}
        self._collect_initial_values(view_id, result, set())
        return result

    def _collect_initial_values(
        self,
        view_id: ViewId,
        out: Dict[ProcessorId, Value],
        visited: set,
    ) -> None:
        if view_id in visited:
            return
        visited.add(view_id)
        info = self._info[view_id]
        out.setdefault(info.processor, info.initial_value)
        if info.previous is not None:
            self._collect_initial_values(info.previous, out, visited)
        for _, sender_view in info.heard_from:
            self._collect_initial_values(sender_view, out, visited)

    def heard_from_at(self, view_id: ViewId, round_number: int) -> FrozenSet[ProcessorId]:
        """Senders heard from in round *round_number* along this view's own
        history (1-based; round ``m`` is the round ending at time ``m``)."""
        if not 1 <= round_number <= self._info[view_id].time:
            raise ConfigurationError(
                f"round {round_number} outside 1..{self._info[view_id].time}"
            )
        chain = self.history(view_id)
        return self._info[chain[round_number]].senders


def merge_entries(
    master: ViewTable, entries: List[ViewKey]
) -> List[ViewId]:
    """Intern exported *entries* into *master*, returning the id mapping.

    ``mapping[local_id]`` is the id in *master* of the view that held
    ``local_id`` in the exporting table.  Entries must be in the exporting
    table's id order (as produced by :meth:`ViewTable.export_entries`), so
    every internal node's references are already mapped when it arrives.

    Interning into a fresh table assigns ids by first appearance, which is
    exactly the serial builder's assignment order — this is what makes the
    parallel system build and the on-disk cache bit-identical to a serial
    enumeration.
    """
    mapping: List[ViewId] = []
    for entry in entries:
        if entry[0] == "leaf":
            _, processor, initial_value = entry
            mapping.append(master.leaf(processor, initial_value))
        elif entry[0] == "node":
            _, previous, heard_from = entry
            mapping.append(
                master.extend(
                    mapping[previous],
                    {sender: mapping[view] for sender, view in heard_from},
                )
            )
        else:
            raise ConfigurationError(f"unknown view entry kind {entry[0]!r}")
    return mapping
