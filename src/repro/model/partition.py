"""Limb-block partitions: in-kernel sharding for the chunked evaluator.

The execution engine used to shard E9 at *run* level: every worker held
the full :class:`~repro.model.system.System` (385k heavy ``Run`` objects
on the Proposition 6.3 cell — ~20s just to unpickle) and scanned its
slice of views point by point.  The chunked kernel, meanwhile, already
organizes the same information as flat limb arrays and sparse per-state
group tables.  This module closes that gap with two pieces:

* :class:`SystemArrays` — a compact, numpy-native projection of a system
  (view-id matrix, per-view owner/time/parent, initial values, nonfaulty
  sets, delivery tensors).  It carries everything the sharded knowledge
  sweeps need, costs a fraction of the ``Run``-object pickle to load,
  and round-trips through an ``.npz`` sidecar managed by
  :class:`~repro.model.provider.SystemProvider` next to the system cache
  files.  Scenario lookup (``run_index_of``) matches the *observable*
  run content — initial values, nonfaulty set, delivery tensor — which
  identifies a run uniquely under the canonical adversaries.

* :class:`LimbBlockPartition` — the chunked index's per-processor group
  tables (``idx`` / ``val`` / ``starts``; see
  :class:`~repro.model.chunked.ChunkedIndex`) cut into **limb blocks**:
  contiguous limb ranges, each owning every state group whose first
  entry falls inside it (a group always stays whole — its trailing
  entries may spill past the block edge, which only affects balance,
  never correctness).  A :class:`LimbBlock` descriptor is tiny and
  JSON-serializable, so shard parameters stay checkpointable while the
  heavy tables travel to forked workers copy-on-write through the worker
  context.  Per-block sweeps (believes verdicts, reachability-component
  labels, decision-state masks) are vectorized gather/segmented-reduce
  passes on the numpy backend with the same pure-Python fallbacks as the
  kernel itself; per-block results are merged at the stage barrier
  (:func:`merge_component_labels` folds block-local component labels
  with a union-find over the conflicting representatives only).

Everything here is deliberately :class:`System`-free: the E9 batch plan
runs entirely on arrays, and the verdicts are bit-identical to the
monolithic evaluation because both reduce to the same group tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs, trace
from ..errors import ConfigurationError, EvaluationError
from . import chunked as _ck
from .chunked import LIMB_BITS, LIMB_MASK

#: Target group-table entries per limb block when no explicit shard size
#: is requested; blocks are balanced by entry count, not limb count.
DEFAULT_BLOCK_ENTRIES = 1 << 18

#: Hard cap on blocks per partition (shard-id explosion guard).
MAX_BLOCKS = 64

#: Format stamp of the ``.npz`` sidecar payload.
ARRAYS_VERSION = 1


def _np():
    """The numpy module the chunked backend is currently using (or None).

    Routed through :mod:`repro.model.chunked` so that
    ``force_python_backend`` and ``REPRO_CHUNKED_BACKEND=python`` put the
    partition machinery onto its pure-Python paths together with the
    kernel.
    """
    return _ck._active_numpy


# -- run-level mask helpers -------------------------------------------------


def run_mask_to_limbs(mask: int, num_runs: int, width: int):
    """Spread a run-level bit mask to a point-level limb buffer.

    Bit ``r`` of *mask* becomes the full ``width``-bit window of run
    ``r`` — the limb form of a run-level truth assignment.
    """
    np = _np()
    nbits = num_runs * width
    nlimbs = max(1, (nbits + LIMB_BITS - 1) // LIMB_BITS)
    if np is None:
        limbs = [0] * nlimbs
        data = mask.to_bytes((num_runs + 7) // 8 or 1, "little")
        block = (1 << width) - 1
        for run_index in range(num_runs):
            if (data[run_index >> 3] >> (run_index & 7)) & 1:
                _ck._or_window(limbs, run_index * width, block)
        return limbs
    data = mask.to_bytes((num_runs + 7) // 8 or 1, "little")
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), bitorder="little"
    )[:num_runs]
    points = np.repeat(bits, width)
    packed = np.packbits(points, bitorder="little")
    buf = np.zeros(nlimbs * 8, np.uint8)
    buf[: packed.size] = packed
    return buf.view(np.uint64)


def bools_to_mask(values) -> int:
    """Pack an iterable/array of booleans into a run-level int mask."""
    np = _np()
    if np is not None and isinstance(values, np.ndarray):
        packed = np.packbits(
            values.astype(bool, copy=False), bitorder="little"
        )
        return int.from_bytes(packed.tobytes(), "little")
    data = bytearray()
    byte = 0
    shift = 0
    for value in values:
        if value:
            byte |= 1 << shift
        shift += 1
        if shift == 8:
            data.append(byte)
            byte = 0
            shift = 0
    if shift:
        data.append(byte)
    return int.from_bytes(bytes(data), "little")


def limbs_to_hex(limbs) -> str:
    """Hex serialization of a limb buffer (JSON-safe shard payloads)."""
    if isinstance(limbs, list):
        nbytes = len(limbs) * 8
        value = 0
        for i, limb in enumerate(limbs):
            value |= limb << (64 * i)
        return value.to_bytes(nbytes, "little").hex()
    return limbs.astype("<u8").tobytes().hex()


def hex_to_limbs(text: str):
    """Inverse of :func:`limbs_to_hex`, onto the active backend."""
    data = bytes.fromhex(text)
    np = _np()
    if np is None:
        return [
            int.from_bytes(data[i : i + 8], "little")
            for i in range(0, len(data), 8)
        ]
    return np.frombuffer(data, dtype="<u8").astype(np.uint64)


def cbox_mask_from_labels(labels, phi: int, num_runs: int) -> int:
    """Run-level ``C□`` mask from component labels and run-level φ.

    Vectorized counterpart of ``repro.exec.tasks.cbox_bits``: a run's bit
    is the AND of φ over its component; label ``-1`` is vacuously true.
    """
    np = _np()
    if np is None or isinstance(labels, list):
        from ..exec.tasks import cbox_bits

        return cbox_bits([int(x) for x in labels], phi)
    data = phi.to_bytes((num_runs + 7) // 8 or 1, "little")
    phi_bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), bitorder="little"
    )[:num_runs].astype(bool)
    labels = np.asarray(labels, dtype=np.int64)
    out = np.ones(num_runs, dtype=bool)
    labeled = np.flatnonzero(labels >= 0)
    if labeled.size:
        lab = labels[labeled]
        order = np.argsort(lab, kind="stable")
        sorted_lab = lab[order]
        sorted_phi = phi_bits[labeled][order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_lab[1:] != sorted_lab[:-1]))
        )
        group_ok = np.logical_and.reduceat(sorted_phi, starts)
        ok_sorted = np.repeat(group_ok, np.diff(np.append(starts, lab.size)))
        ok = np.empty(lab.size, dtype=bool)
        ok[order] = ok_sorted
        out[labeled] = ok
    return bools_to_mask(out)


# -- the array sidecar ------------------------------------------------------


class SystemArrays:
    """Array projection of an enumerated system (numpy-native).

    Attributes (numpy backend; the pure-Python fallback stores plain
    nested lists with identical indexing):

    * ``views`` — ``(runs, horizon+1, n)`` int32, the view id at point
      ``(run, time)`` for each processor; position ``run * width + time``
      is the chunked kernel's bit layout.
    * ``owner`` / ``vtime`` / ``prev`` — per view id: owning processor,
      depth, and the owner's view one round earlier (``-1`` at time 0).
    * ``init`` — ``(runs, n)`` int8 initial values.
    * ``nonfaulty`` — ``(runs, n)`` bool membership matrix.
    * ``deliveries`` — ``(runs, horizon, n, n)`` bool;
      ``deliveries[r, m-1, receiver, sender]`` says the round-``m``
      message arrived (diagonal forced true — self-delivery is vacuous).
    * ``occurs`` — per view id, whether it occurs at any point.
    """

    __slots__ = (
        "mode",
        "n",
        "t",
        "horizon",
        "num_runs",
        "width",
        "num_views",
        "views",
        "owner",
        "vtime",
        "prev",
        "init",
        "nonfaulty",
        "deliveries",
        "occurs",
        "_time_levels",
    )

    def __init__(
        self,
        *,
        mode: str,
        n: int,
        t: int,
        horizon: int,
        num_views: int,
        views,
        owner,
        vtime,
        prev,
        init,
        nonfaulty,
        deliveries,
        occurs,
    ) -> None:
        self.mode = mode
        self.n = n
        self.t = t
        self.horizon = horizon
        self.width = horizon + 1
        self.num_runs = len(views)
        self.num_views = num_views
        self.views = views
        self.owner = owner
        self.vtime = vtime
        self.prev = prev
        self.init = init
        self.nonfaulty = nonfaulty
        self.deliveries = deliveries
        self.occurs = occurs
        self._time_levels: Optional[List[object]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_system(cls, system) -> "SystemArrays":
        """Project *system* onto arrays (one pass over runs and table)."""
        np = _np()
        with obs.stage("system_arrays_build"), trace.span(
            "system_arrays_build", runs=len(system.runs)
        ):
            n = system.n
            horizon = system.horizon
            runs = system.runs
            num_views = len(system.table)
            table = system.table
            owner_list = [0] * num_views
            vtime_list = [0] * num_views
            prev_list = [-1] * num_views
            for view_id in range(num_views):
                info = table.info(view_id)
                owner_list[view_id] = info.processor
                vtime_list[view_id] = info.time
                prev_list[view_id] = (
                    -1 if info.previous is None else info.previous
                )
            views_list = [run.views for run in runs]
            init_list = [run.config.values for run in runs]
            nf_list = [
                [p in run.nonfaulty for p in range(n)] for run in runs
            ]
            mode = system.mode.value if system.mode is not None else "?"
            if np is None:
                deliv = [
                    [
                        [
                            [
                                (s == r) or (s in run.deliveries[m][r])
                                for s in range(n)
                            ]
                            for r in range(n)
                        ]
                        for m in range(horizon)
                    ]
                    for run in runs
                ]
                occurs = [False] * num_views
                for row in views_list:
                    for per_time in row:
                        for view in per_time:
                            occurs[view] = True
                return cls(
                    mode=mode,
                    n=n,
                    t=system.t,
                    horizon=horizon,
                    num_views=num_views,
                    views=[
                        [list(per_time) for per_time in row]
                        for row in views_list
                    ],
                    owner=owner_list,
                    vtime=vtime_list,
                    prev=prev_list,
                    init=[list(values) for values in init_list],
                    nonfaulty=nf_list,
                    deliveries=deliv,
                    occurs=occurs,
                )
            views_arr = np.array(views_list, dtype=np.int32)
            deliv = np.zeros((len(runs), horizon, n, n), dtype=bool)
            for run_index, run in enumerate(runs):
                for m in range(horizon):
                    per_receiver = run.deliveries[m]
                    for receiver in range(n):
                        senders = per_receiver[receiver]
                        if senders:
                            deliv[run_index, m, receiver, list(senders)] = (
                                True
                            )
            diag = np.arange(n)
            deliv[:, :, diag, diag] = True
            occurs = np.zeros(num_views, dtype=bool)
            occurs[views_arr.ravel()] = True
            return cls(
                mode=mode,
                n=n,
                t=system.t,
                horizon=horizon,
                num_views=num_views,
                views=views_arr,
                owner=np.array(owner_list, dtype=np.int32),
                vtime=np.array(vtime_list, dtype=np.int16),
                prev=np.array(prev_list, dtype=np.int32),
                init=np.array(init_list, dtype=np.int8),
                nonfaulty=np.array(nf_list, dtype=bool),
                deliveries=deliv,
                occurs=occurs,
            )

    # -- npz round-trip ----------------------------------------------------

    def save(self, path: str) -> None:
        """Write the ``.npz`` sidecar (numpy backend only)."""
        np = _np()
        if np is None:
            raise ConfigurationError(
                "the SystemArrays sidecar needs the numpy backend"
            )
        meta = json.dumps(
            {
                "arrays_version": ARRAYS_VERSION,
                "mode": self.mode,
                "n": self.n,
                "t": self.t,
                "horizon": self.horizon,
                "num_views": self.num_views,
            }
        )
        np.savez_compressed(
            path,
            meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
            views=self.views,
            owner=self.owner,
            vtime=self.vtime,
            prev=self.prev,
            init=self.init,
            nonfaulty=self.nonfaulty,
            deliveries=self.deliveries,
            occurs=self.occurs,
        )

    @classmethod
    def load(cls, path: str) -> "SystemArrays":
        """Read a sidecar written by :meth:`save`; raises on mismatch."""
        np = _np()
        if np is None:
            raise ConfigurationError(
                "the SystemArrays sidecar needs the numpy backend"
            )
        with np.load(path, allow_pickle=False) as bundle:
            meta = json.loads(bytes(bundle["meta"]).decode("utf-8"))
            if meta.get("arrays_version") != ARRAYS_VERSION:
                raise ConfigurationError(
                    f"sidecar {path} has arrays_version "
                    f"{meta.get('arrays_version')!r}, need {ARRAYS_VERSION}"
                )
            return cls(
                mode=meta["mode"],
                n=meta["n"],
                t=meta["t"],
                horizon=meta["horizon"],
                num_views=meta["num_views"],
                views=bundle["views"],
                owner=bundle["owner"],
                vtime=bundle["vtime"],
                prev=bundle["prev"],
                init=bundle["init"],
                nonfaulty=bundle["nonfaulty"],
                deliveries=bundle["deliveries"],
                occurs=bundle["occurs"],
            )

    # -- shape -------------------------------------------------------------

    @property
    def num_points(self) -> int:
        return self.num_runs * self.width

    @property
    def nlimbs(self) -> int:
        return max(1, (self.num_points + LIMB_BITS - 1) // LIMB_BITS)

    @property
    def tail(self) -> int:
        rem = self.num_points % LIMB_BITS
        return LIMB_MASK if rem == 0 else (1 << rem) - 1

    # -- run-level facts ---------------------------------------------------

    def exists_mask(self, value: int) -> int:
        """Run-level mask of the paper's ∃value."""
        np = _np()
        if np is None or isinstance(self.init, list):
            return bools_to_mask(
                any(v == value for v in row) for row in self.init
            )
        return bools_to_mask((self.init == value).any(axis=1))

    def nonfaulty_mask(self, processor: int) -> int:
        """Run-level mask of runs where *processor* is nonfaulty."""
        np = _np()
        if np is None or isinstance(self.nonfaulty, list):
            return bools_to_mask(row[processor] for row in self.nonfaulty)
        return bools_to_mask(self.nonfaulty[:, processor])

    def nonfaulty_of(self, run_index: int) -> List[int]:
        """The nonfaulty processors of one run."""
        row = self.nonfaulty[run_index]
        return [p for p in range(self.n) if row[p]]

    def view_at(self, run_index: int, time: int, processor: int) -> int:
        return int(self.views[run_index][time][processor])

    # -- scenario lookup ---------------------------------------------------

    def run_index_of(self, config, pattern) -> int:
        """The unique run matching ``(config, pattern)`` by content.

        Matches the observable run description — initial values,
        nonfaulty set and the full delivery tensor — which determines
        the run uniquely under the canonical enumerations (a behaviour
        is recoverable from the messages it drops).  Zero or multiple
        matches raise, so a content collision can never silently pick a
        wrong run.
        """
        n = self.n
        values = list(config.values)
        nonfaulty = pattern.nonfaulty(n)
        nf_row = [p in nonfaulty for p in range(n)]
        deliv = [
            [
                [
                    s == r or pattern.delivered(s, r, m + 1)
                    for s in range(n)
                ]
                for r in range(n)
            ]
            for m in range(self.horizon)
        ]
        np = _np()
        if np is None or isinstance(self.views, list):
            matches = [
                run_index
                for run_index in range(self.num_runs)
                if list(self.init[run_index]) == values
                and list(self.nonfaulty[run_index]) == nf_row
                and [
                    [list(row) for row in per_round]
                    for per_round in self.deliveries[run_index]
                ]
                == deliv
            ]
        else:
            hits = (
                (self.init == np.array(values, dtype=np.int8)).all(axis=1)
                & (self.nonfaulty == np.array(nf_row, dtype=bool)).all(
                    axis=1
                )
                & (
                    self.deliveries == np.array(deliv, dtype=bool)
                ).reshape(self.num_runs, -1).all(axis=1)
            )
            matches = np.flatnonzero(hits).tolist()
        if len(matches) != 1:
            raise EvaluationError(
                f"scenario lookup matched {len(matches)} runs "
                f"(config={config}, pattern={pattern})"
            )
        return int(matches[0])

    # -- recall closure ----------------------------------------------------

    def recall_closure(self, trigger_views: Iterable[int]) -> List[int]:
        """Occurring views closed under recall over the triggers.

        Same contract as
        :func:`repro.core.decision_sets.close_under_recall`: a view is
        in the closure iff it or any ancestor (through ``prev``) is a
        trigger.  Vectorized by time level — each level ORs in its
        parents' already-final flags.
        """
        np = _np()
        if np is None or isinstance(self.prev, list):
            triggers = set(trigger_views)
            closed = [False] * self.num_views
            for view in triggers:
                closed[view] = True
            order = sorted(range(self.num_views), key=lambda v: self.vtime[v])
            for view in order:
                parent = self.prev[view]
                if parent >= 0 and closed[parent]:
                    closed[view] = True
            return [
                view
                for view in range(self.num_views)
                if closed[view] and self.occurs[view]
            ]
        closed = np.zeros(self.num_views, dtype=bool)
        triggers = np.asarray(sorted(set(trigger_views)), dtype=np.int64)
        if triggers.size:
            closed[triggers] = True
        if self._time_levels is None:
            self._time_levels = [
                np.flatnonzero(self.vtime == level)
                for level in range(self.width)
            ]
        for level in range(1, self.width):
            level_views = self._time_levels[level]
            if level_views.size == 0:
                continue
            parents = self.prev[level_views]
            closed[level_views] |= closed[parents]
        return np.flatnonzero(closed & self.occurs).tolist()

    # -- trigger scans -----------------------------------------------------

    def first_fire_triggers(
        self,
        zeros: Iterable[int],
        ones: Iterable[int],
        run_range: Tuple[int, int],
    ) -> Tuple[List[int], List[int]]:
        """First-firing trigger views of a pair over a run range.

        The per-(run, processor) scan of ``e9.triggers`` — first time a
        view falls in either set, zero winning simultaneous firings —
        vectorized over the run range.
        """
        start, stop = run_range
        np = _np()
        if np is None or isinstance(self.views, list):
            zset, oset = set(zeros), set(ones)
            zero_triggers: set = set()
            one_triggers: set = set()
            for run_index in range(start, stop):
                row = self.views[run_index]
                for processor in range(self.n):
                    zero_time = one_time = None
                    for time in range(self.width):
                        view = row[time][processor]
                        if view in zset:
                            zero_time = time
                        if view in oset:
                            one_time = time
                        if zero_time is not None or one_time is not None:
                            break
                    if zero_time is None and one_time is None:
                        continue
                    if zero_time is not None and (
                        one_time is None or zero_time <= one_time
                    ):
                        zero_triggers.add(row[zero_time][processor])
                    else:
                        one_triggers.add(row[one_time][processor])
            return sorted(zero_triggers), sorted(one_triggers)
        zflags = np.zeros(self.num_views, dtype=bool)
        oflags = np.zeros(self.num_views, dtype=bool)
        zlist = np.asarray(sorted(set(zeros)), dtype=np.int64)
        olist = np.asarray(sorted(set(ones)), dtype=np.int64)
        if zlist.size:
            zflags[zlist] = True
        if olist.size:
            oflags[olist] = True
        width = self.width
        zero_triggers: set = set()
        one_triggers: set = set()
        block = self.views[start:stop]  # (range, width, n)
        for processor in range(self.n):
            vv = block[:, :, processor]
            zhit = zflags[vv]
            ohit = oflags[vv]
            fz = np.where(zhit.any(axis=1), zhit.argmax(axis=1), width)
            fo = np.where(ohit.any(axis=1), ohit.argmax(axis=1), width)
            zfire = (fz < width) & (fz <= fo)
            ofire = (fo < width) & (fo < fz)
            if zfire.any():
                rows = np.flatnonzero(zfire)
                zero_triggers.update(vv[rows, fz[rows]].tolist())
            if ofire.any():
                rows = np.flatnonzero(ofire)
                one_triggers.update(vv[rows, fo[rows]].tolist())
        return sorted(zero_triggers), sorted(one_triggers)

    def first_decision(
        self, run_index: int, processor: int, zeros, ones
    ) -> Optional[Tuple[int, int]]:
        """First decision of *processor* in one run (0 wins ties)."""
        zero_time = one_time = None
        row = self.views[run_index]
        for time in range(self.width):
            view = int(row[time][processor])
            if view in zeros:
                zero_time = time
            if view in ones:
                one_time = time
            if zero_time is not None or one_time is not None:
                break
        if zero_time is None and one_time is None:
            return None
        if zero_time is not None and (
            one_time is None or zero_time <= one_time
        ):
            return (0, zero_time)
        return (1, one_time)


# -- limb blocks ------------------------------------------------------------


@dataclass(frozen=True)
class LimbBlock:
    """Picklable descriptor of one limb block of a partition.

    ``limb_lo``/``limb_hi`` delimit the block's limb range; a block owns
    every state group whose *first* entry limb falls in the range (the
    group's spans per processor are resolved against the partition's
    tables, which travel to workers copy-on-write — the descriptor
    itself stays a few ints so shard parameters remain JSON-sized).
    """

    block_id: int
    limb_lo: int
    limb_hi: int
    groups: int
    entries: int

    def to_params(self) -> Dict[str, int]:
        """JSON form embedded in shard parameters (checkpoint binding)."""
        return {
            "block": self.block_id,
            "limb_lo": self.limb_lo,
            "limb_hi": self.limb_hi,
            "groups": self.groups,
            "entries": self.entries,
        }


class LimbBlockPartition:
    """Group tables of a chunked index, cut into limb blocks.

    Built either from :class:`SystemArrays` (vectorized, no
    :class:`System` required — the exec path) or from an existing
    :class:`~repro.model.chunked.ChunkedIndex` (differential tests).
    Per-processor tables mirror the index: ``idx[p]`` limb indices,
    ``val[p]`` limb values, ``starts[p]`` group boundaries, ``gv[p]``
    the view id behind each group.  Blocks partition groups by first
    entry limb, balanced by entry count.
    """

    def __init__(
        self,
        *,
        n: int,
        num_runs: int,
        width: int,
        num_views: int,
        tables: List[Dict[str, Any]],
        num_blocks: Optional[int] = None,
        target_entries: Optional[int] = None,
        arrays: Optional[SystemArrays] = None,
    ) -> None:
        self.n = n
        self.num_runs = num_runs
        self.width = width
        self.num_views = num_views
        self.num_points = num_runs * width
        self.nlimbs = max(1, (self.num_points + LIMB_BITS - 1) // LIMB_BITS)
        rem = self.num_points % LIMB_BITS
        self.tail = LIMB_MASK if rem == 0 else (1 << rem) - 1
        self.tables = tables
        self.arrays = arrays
        self.total_entries = sum(table["entries"] for table in tables)
        self._span_cache: Dict[Tuple[int, int], Any] = {}
        self.blocks: List[LimbBlock] = self._make_blocks(
            num_blocks, target_entries
        )

    # -- factories ---------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        arrays: SystemArrays,
        *,
        num_blocks: Optional[int] = None,
        target_entries: Optional[int] = None,
    ) -> "LimbBlockPartition":
        """Build group tables directly from the view-id matrix."""
        np = _np()
        with obs.stage("limb_partition_build"), trace.span(
            "limb_partition_build", runs=arrays.num_runs
        ):
            width = arrays.width
            tables: List[Dict[str, Any]] = []
            if np is None or isinstance(arrays.views, list):
                for processor in range(arrays.n):
                    acc: Dict[int, Dict[int, int]] = {}
                    for run_index in range(arrays.num_runs):
                        base = run_index * width
                        row = arrays.views[run_index]
                        for time in range(width):
                            view = int(row[time][processor])
                            pos = base + time
                            per = acc.setdefault(view, {})
                            limb = pos >> 6
                            per[limb] = per.get(limb, 0) | (
                                1 << (pos & 63)
                            )
                    gv = sorted(acc)
                    idx: List[int] = []
                    val: List[int] = []
                    starts = [0]
                    first_limb: List[int] = []
                    for view in gv:
                        per = acc[view]
                        limbs = sorted(per)
                        first_limb.append(limbs[0])
                        for limb in limbs:
                            idx.append(limb)
                            val.append(per[limb])
                        starts.append(len(idx))
                    tables.append(
                        {
                            "idx": idx,
                            "val": val,
                            "starts": starts,
                            "gv": gv,
                            "first_limb": first_limb,
                            "entries": len(idx),
                        }
                    )
            else:
                for processor in range(arrays.n):
                    vv = arrays.views[:, :, processor].ravel().astype(
                        np.int64
                    )
                    order = np.argsort(vv, kind="stable")
                    sv = vv[order]
                    limb = order >> 6
                    bit = (order & 63).astype(np.uint64)
                    if sv.size == 0:
                        tables.append(
                            {
                                "idx": np.zeros(0, np.int64),
                                "val": np.zeros(0, np.uint64),
                                "starts": np.zeros(1, np.int64),
                                "gv": np.zeros(0, np.int64),
                                "first_limb": np.zeros(0, np.int64),
                                "entries": 0,
                            }
                        )
                        continue
                    new_entry = np.empty(sv.size, dtype=bool)
                    new_entry[0] = True
                    new_entry[1:] = (sv[1:] != sv[:-1]) | (
                        limb[1:] != limb[:-1]
                    )
                    entry_starts = np.flatnonzero(new_entry)
                    val = np.bitwise_or.reduceat(
                        np.uint64(1) << bit, entry_starts
                    )
                    idx = limb[entry_starts]
                    sv_entries = sv[entry_starts]
                    new_group = np.empty(sv_entries.size, dtype=bool)
                    new_group[0] = True
                    new_group[1:] = sv_entries[1:] != sv_entries[:-1]
                    group_first = np.flatnonzero(new_group)
                    starts = np.append(group_first, sv_entries.size)
                    tables.append(
                        {
                            "idx": idx,
                            "val": val,
                            "starts": starts,
                            "gv": sv_entries[group_first],
                            "first_limb": idx[group_first],
                            "entries": int(idx.size),
                        }
                    )
            return cls(
                n=arrays.n,
                num_runs=arrays.num_runs,
                width=width,
                num_views=arrays.num_views,
                tables=tables,
                num_blocks=num_blocks,
                target_entries=target_entries,
                arrays=arrays,
            )

    @classmethod
    def from_index(
        cls,
        index,
        *,
        num_blocks: Optional[int] = None,
        target_entries: Optional[int] = None,
    ) -> "LimbBlockPartition":
        """Slice an existing :class:`ChunkedIndex`'s tables."""
        index._ensure_groups()
        np = _np()
        tables: List[Dict[str, Any]] = []
        for processor in range(index.system.n):
            idx = index._idx[processor]
            val = index._val[processor]
            starts = index._starts[processor]
            gv = index.group_views[processor]
            if isinstance(idx, list):
                first_limb = [
                    idx[starts[g]] for g in range(len(starts) - 1)
                ]
                tables.append(
                    {
                        "idx": list(idx),
                        "val": list(val),
                        "starts": list(starts),
                        "gv": list(gv),
                        "first_limb": first_limb,
                        "entries": len(idx),
                    }
                )
            else:
                starts_arr = np.asarray(starts, dtype=np.int64)
                tables.append(
                    {
                        "idx": idx,
                        "val": val,
                        "starts": starts_arr,
                        "gv": np.asarray(gv, dtype=np.int64),
                        "first_limb": idx[starts_arr[:-1]]
                        if idx.size
                        else np.zeros(0, np.int64),
                        "entries": int(idx.size),
                    }
                )
        num_views = len(index.system.table)
        return cls(
            n=index.system.n,
            num_runs=index.num_runs,
            width=index.width,
            num_views=num_views,
            tables=tables,
            num_blocks=num_blocks,
            target_entries=target_entries,
        )

    # -- block layout ------------------------------------------------------

    def _make_blocks(
        self,
        num_blocks: Optional[int],
        target_entries: Optional[int],
    ) -> List[LimbBlock]:
        if num_blocks is None:
            target = target_entries or DEFAULT_BLOCK_ENTRIES
            num_blocks = (self.total_entries + target - 1) // target
        num_blocks = max(1, min(MAX_BLOCKS, int(num_blocks)))
        np = _np()
        weights = [0] * self.nlimbs
        if np is not None and not isinstance(self.tables[0]["idx"], list):
            weights = np.zeros(self.nlimbs + 1, dtype=np.int64)
            for table in self.tables:
                starts = table["starts"]
                if table["entries"]:
                    sizes = np.diff(starts)
                    np.add.at(weights, table["first_limb"], sizes)
            csum = np.cumsum(weights)
            total = int(csum[-1])
            cuts = {0, self.nlimbs}
            for k in range(1, num_blocks):
                target_weight = total * k / num_blocks
                cut = int(np.searchsorted(csum, target_weight, side="left"))
                cuts.add(min(cut + 1, self.nlimbs))
        else:
            for table in self.tables:
                starts = table["starts"]
                for g in range(len(starts) - 1):
                    weights[table["first_limb"][g]] += (
                        starts[g + 1] - starts[g]
                    )
            total = sum(weights)
            cuts = {0, self.nlimbs}
            acc = 0
            k = 1
            for limb, weight in enumerate(weights):
                acc += weight
                while k < num_blocks and acc >= total * k / num_blocks:
                    cuts.add(min(limb + 1, self.nlimbs))
                    k += 1
        bounds = sorted(cuts)
        blocks: List[LimbBlock] = []
        for block_id, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            groups = 0
            entries = 0
            for processor in range(self.n):
                gids = self._block_groups(processor, lo, hi)
                groups += self._count(gids)
                entries += self._entry_count(processor, gids)
            blocks.append(
                LimbBlock(
                    block_id=block_id,
                    limb_lo=lo,
                    limb_hi=hi,
                    groups=groups,
                    entries=entries,
                )
            )
        return blocks

    @staticmethod
    def _count(gids) -> int:
        return len(gids) if isinstance(gids, list) else int(gids.size)

    def _entry_count(self, processor: int, gids) -> int:
        starts = self.tables[processor]["starts"]
        if isinstance(gids, list):
            return sum(starts[g + 1] - starts[g] for g in gids)
        np = _np()
        starts = np.asarray(starts)
        return int((starts[gids + 1] - starts[gids]).sum()) if gids.size else 0

    def _block_groups(self, processor: int, lo: int, hi: int):
        """Group ids of *processor* whose first entry limb ∈ [lo, hi)."""
        table = self.tables[processor]
        first_limb = table["first_limb"]
        if isinstance(first_limb, list):
            return [
                g
                for g, limb in enumerate(first_limb)
                if lo <= limb < hi
            ]
        np = _np()
        key = (processor, -1)
        cached = self._span_cache.get(key)
        if cached is None:
            order = np.argsort(first_limb, kind="stable")
            cached = (order, np.asarray(first_limb)[order])
            self._span_cache[key] = cached
        order, sorted_limbs = cached
        s, e = np.searchsorted(sorted_limbs, [lo, hi])
        return np.sort(order[s:e])

    def _block_entries(self, processor: int, block_id: int):
        """``(gids, entry_sel, local_starts)`` for one (processor, block).

        ``entry_sel`` gathers the block's entries out of the flat table;
        ``local_starts`` delimits groups within the gathered entries
        (``reduceat`` boundaries).  Cached — workers build each pair
        once.
        """
        key = (processor, block_id)
        cached = self._span_cache.get(key)
        if cached is not None:
            return cached
        block = self.blocks[block_id]
        gids = self._block_groups(processor, block.limb_lo, block.limb_hi)
        table = self.tables[processor]
        starts = table["starts"]
        if isinstance(starts, list):
            entry_sel = []
            local_starts = []
            for g in gids:
                local_starts.append(len(entry_sel))
                entry_sel.extend(range(starts[g], starts[g + 1]))
            cached = (gids, entry_sel, local_starts)
        else:
            np = _np()
            counts = starts[gids + 1] - starts[gids]
            total = int(counts.sum())
            if total == 0:
                cached = (
                    gids,
                    np.zeros(0, np.int64),
                    np.zeros(0, np.int64),
                )
            else:
                offsets = np.concatenate(
                    ([0], np.cumsum(counts)[:-1])
                ).astype(np.int64)
                base = np.repeat(starts[gids], counts)
                intra = np.arange(total, dtype=np.int64) - np.repeat(
                    offsets, counts
                )
                cached = (gids, base + intra, offsets)
        self._span_cache[key] = cached
        return cached

    def block_descriptors(self) -> List[Dict[str, int]]:
        """JSON descriptors of every block (shard parameters)."""
        return [block.to_params() for block in self.blocks]

    # -- member masks ------------------------------------------------------

    def nonfaulty_limbs(self, processor: int):
        """Point-level limbs where *processor* is nonfaulty (N member)."""
        if self.arrays is None:
            raise ConfigurationError(
                "nonfaulty_limbs needs a partition built from SystemArrays"
            )
        return run_mask_to_limbs(
            self.arrays.nonfaulty_mask(processor),
            self.num_runs,
            self.width,
        )

    # -- per-block sweeps --------------------------------------------------

    def believes_true_views(
        self, processor: int, block_id: int, pmask, phi
    ) -> List[int]:
        """Views of the block whose group passes ``B_p^S φ``.

        A group passes iff no member point (``val ∧ pmask``) violates φ
        — vacuously true with no member occurrence, exactly the
        reference semantics.
        """
        gids, entry_sel, local_starts = self._block_entries(
            processor, block_id
        )
        # Sweep size per (processor, block): entry count is a property of
        # the partition layout, so this histogram is identical whether the
        # plan runs monolithic or sharded (the merge-parity tests rely on
        # it).
        obs.observe("partition_sweep_entries", len(entry_sel))
        table = self.tables[processor]
        if isinstance(table["idx"], list):
            idx = table["idx"]
            val = table["val"]
            starts = table["starts"]
            gv = table["gv"]
            out = []
            for g in gids:
                ok = True
                for k in range(starts[g], starts[g + 1]):
                    if val[k] & pmask[idx[k]] & ~phi[idx[k]]:
                        ok = False
                        break
                if ok:
                    out.append(int(gv[g]))
            return out
        np = _np()
        if self._count(gids) == 0 or entry_sel.size == 0:
            return [int(v) for v in np.asarray(table["gv"])[gids]]
        ent_idx = table["idx"][entry_sel]
        ent_val = table["val"][entry_sel]
        bad = (ent_val & pmask[ent_idx] & ~phi[ent_idx]) != 0
        grp_bad = np.bitwise_or.reduceat(bad, local_starts)
        return np.asarray(table["gv"])[gids[~grp_bad]].tolist()

    def component_labels(
        self, block_id: int, state_flags, nf_limbs: List[object]
    ) -> Tuple[List[int], List[int]]:
        """Block-local reachability components of ``N ∧ Z``.

        ``state_flags`` marks the decision views Z (bool per view id, or
        a set on the pure-Python path); ``nf_limbs[p]`` is processor
        *p*'s nonfaulty point mask.  Two runs are connected when some
        block group with its view in Z has nonfaulty-owner occurrences
        in both.  Returns ``(runs, reps)``: the touched runs and each
        one's block-local component representative (its component's
        minimum touched run) — merged across blocks by
        :func:`merge_component_labels` at the stage barrier.
        """
        np = _np()
        pairs_group: List[Any] = []
        pairs_run: List[Any] = []
        group_base = 0
        for processor in range(self.n):
            gids, entry_sel, local_starts = self._block_entries(
                processor, block_id
            )
            table = self.tables[processor]
            if isinstance(table["idx"], list):
                idx = table["idx"]
                val = table["val"]
                starts = table["starts"]
                gv = table["gv"]
                pmask = nf_limbs[processor]
                for g in gids:
                    if gv[g] not in state_flags:
                        continue
                    for k in range(starts[g], starts[g + 1]):
                        rel = val[k] & pmask[idx[k]]
                        base = idx[k] * LIMB_BITS
                        while rel:
                            bit = (rel & -rel).bit_length() - 1
                            pairs_group.append(group_base + g)
                            pairs_run.append(
                                (base + bit) // self.width
                            )
                            rel &= rel - 1
                group_base += len(table["first_limb"])
                continue
            if self._count(gids) == 0:
                group_base += int(np.asarray(table["gv"]).size)
                continue
            gv = np.asarray(table["gv"])
            in_z = state_flags[gv[gids]]
            if not in_z.any():
                group_base += int(gv.size)
                continue
            z_gids = gids[in_z]
            starts = table["starts"]
            counts = starts[z_gids + 1] - starts[z_gids]
            total = int(counts.sum())
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(
                np.int64
            )
            base = np.repeat(starts[z_gids], counts)
            intra = np.arange(total, dtype=np.int64) - np.repeat(
                offsets, counts
            )
            sel = base + intra
            ent_idx = table["idx"][sel]
            ent_val = table["val"][sel]
            rel = ent_val & nf_limbs[processor][ent_idx]
            grp_of_entry = np.repeat(z_gids, counts)
            nz = np.flatnonzero(rel)
            if nz.size == 0:
                group_base += int(gv.size)
                continue
            rel = rel[nz]
            ent_idx = ent_idx[nz]
            grp_of_entry = grp_of_entry[nz]
            unpacked = np.unpackbits(
                rel.astype("<u8").view(np.uint8), bitorder="little"
            ).astype(bool)
            bit_pos = (
                ent_idx[:, None] * LIMB_BITS
                + np.arange(LIMB_BITS, dtype=np.int64)
            ).ravel()[unpacked]
            runs = bit_pos // self.width
            groups = np.repeat(grp_of_entry, LIMB_BITS)[unpacked]
            pairs_group.append(groups + group_base)
            pairs_run.append(runs)
            group_base += int(gv.size)
        if np is None or (pairs_group and isinstance(pairs_group[0], list)):
            runs_py, reps_py = _component_labels_py(pairs_group, pairs_run)
            obs.observe("partition_component_runs", len(runs_py))
            return runs_py, reps_py
        if not pairs_group:
            obs.observe("partition_component_runs", 0)
            return [], []
        grp = np.concatenate(pairs_group)
        run = np.concatenate(pairs_run)
        key = grp * np.int64(self.num_runs) + run
        unique_key = np.unique(key)
        grp = unique_key // self.num_runs
        run = unique_key % self.num_runs
        # label propagation on the bipartite (group, run) incidence:
        # converges to the minimum touched run per connected component.
        uruns, run_inv = np.unique(run, return_inverse=True)
        order = np.argsort(grp, kind="stable")
        run_inv_sorted = run_inv[order]
        grp_sorted = grp[order]
        gstarts = np.flatnonzero(
            np.concatenate(([True], grp_sorted[1:] != grp_sorted[:-1]))
        )
        gcounts = np.diff(np.append(gstarts, grp_sorted.size))
        labels = np.arange(uruns.size, dtype=np.int64)
        while True:
            gmin = np.minimum.reduceat(labels[run_inv_sorted], gstarts)
            new_labels = labels.copy()
            np.minimum.at(
                new_labels, run_inv_sorted, np.repeat(gmin, gcounts)
            )
            if (new_labels == labels).all():
                break
            labels = new_labels
        obs.observe("partition_component_runs", int(uruns.size))
        return uruns.tolist(), uruns[labels].tolist()

    def states_limbs(self, processor: int, block_id: int, state_flags):
        """Occurrence mask of the block's groups with view ∈ Z.

        The block slice of ``ChunkedIndex.states_mask``; OR-merged with
        the other blocks' slices at the stage barrier.
        """
        gids, entry_sel, local_starts = self._block_entries(
            processor, block_id
        )
        table = self.tables[processor]
        np = _np()
        if isinstance(table["idx"], list):
            out = [0] * self.nlimbs
            idx = table["idx"]
            val = table["val"]
            starts = table["starts"]
            gv = table["gv"]
            for g in gids:
                if gv[g] in state_flags:
                    for k in range(starts[g], starts[g + 1]):
                        out[idx[k]] |= val[k]
            return out
        out = np.zeros(self.nlimbs, np.uint64)
        if self._count(gids) == 0:
            return out
        gv = np.asarray(table["gv"])
        in_z = state_flags[gv[gids]]
        if not in_z.any():
            return out
        z_gids = gids[in_z]
        starts = table["starts"]
        counts = starts[z_gids + 1] - starts[z_gids]
        total = int(counts.sum())
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(
            np.int64
        )
        base = np.repeat(starts[z_gids], counts)
        intra = np.arange(total, dtype=np.int64) - np.repeat(
            offsets, counts
        )
        sel = base + intra
        np.bitwise_or.at(out, table["idx"][sel], table["val"][sel])
        return out

    def probe_believes(
        self, processor: int, view: int, pmask, phi
    ) -> bool:
        """``B_p^S φ`` verdict at one local state (group lookup)."""
        table = self.tables[processor]
        gv = table["gv"]
        if isinstance(gv, list):
            try:
                g = gv.index(view)
            except ValueError:
                raise EvaluationError(
                    f"view {view} is not a state of processor {processor}"
                )
            idx = table["idx"]
            val = table["val"]
            starts = table["starts"]
            for k in range(starts[g], starts[g + 1]):
                if val[k] & pmask[idx[k]] & ~phi[idx[k]]:
                    return False
            return True
        np = _np()
        key = (processor, -2)
        cached = self._span_cache.get(key)
        if cached is None:
            order = np.argsort(gv, kind="stable")
            cached = (order, np.asarray(gv)[order])
            self._span_cache[key] = cached
        order, sorted_gv = cached
        pos = int(np.searchsorted(sorted_gv, view))
        if pos >= sorted_gv.size or int(sorted_gv[pos]) != view:
            raise EvaluationError(
                f"view {view} is not a state of processor {processor}"
            )
        g = int(order[pos])
        starts = table["starts"]
        s, e = int(starts[g]), int(starts[g + 1])
        span = table["idx"][s:e]
        bad = (table["val"][s:e] & pmask[span] & ~phi[span]) != 0
        return not bool(bad.any())

    def state_flags(self, states: Iterable[int]):
        """Z as a per-view-id flag vector (or the set itself, pure-Python)."""
        np = _np()
        if np is None or isinstance(self.tables[0]["idx"], list):
            return set(states)
        flags = np.zeros(self.num_views, dtype=bool)
        state_list = np.asarray(sorted(set(states)), dtype=np.int64)
        if state_list.size:
            flags[state_list] = True
        return flags


def _component_labels_py(
    pairs_group: List[int], pairs_run: List[int]
) -> Tuple[List[int], List[int]]:
    """Union-find fallback over explicit (group, run) incidence pairs."""
    anchor: Dict[int, int] = {}
    parent: Dict[int, int] = {}

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for grp, run in zip(pairs_group, pairs_run):
        if run not in parent:
            parent[run] = run
        if grp not in anchor:
            anchor[grp] = run
            continue
        root_a, root_b = find(anchor[grp]), find(run)
        if root_a != root_b:
            parent[root_b] = root_a
    runs = sorted(parent)
    reps: Dict[int, int] = {}
    labels = []
    for run in runs:
        root = find(run)
        if root not in reps:
            reps[root] = run  # minimum run of the class (sorted order)
        labels.append(reps[root])
    return runs, labels


def merge_component_labels(
    num_runs: int, block_results: Sequence[Tuple[Sequence[int], Sequence[int]]]
):
    """Fold per-block ``(runs, reps)`` partitions into global labels.

    The barrier merge: each block contributes a partition of its touched
    runs; a run touched by several blocks welds its blocks' components
    together.  Only the *conflicting representatives* go through the
    union-find (a handful per stage), everything else is vectorized.
    Returns per-run labels with ``-1`` for runs with no occurrence —
    the same partition the monolithic component scan produces (label
    values may differ; only the partition matters).
    """
    parent: Dict[int, int] = {}

    def find(node: int) -> int:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    np = _np()
    if np is None:
        labels = [-1] * num_runs
        for runs, reps in block_results:
            for run, rep in zip(runs, reps):
                if labels[run] < 0:
                    labels[run] = rep
                else:
                    union(labels[run], rep)
        return [
            find(label) if label >= 0 else -1 for label in labels
        ]
    labels = np.full(num_runs, -1, dtype=np.int64)
    for runs, reps in block_results:
        if not len(runs):
            continue
        runs_arr = np.asarray(runs, dtype=np.int64)
        reps_arr = np.asarray(reps, dtype=np.int64)
        existing = labels[runs_arr]
        fresh = existing < 0
        labels[runs_arr[fresh]] = reps_arr[fresh]
        clash = ~fresh
        if clash.any():
            pairs = np.unique(
                np.stack([existing[clash], reps_arr[clash]], axis=1),
                axis=0,
            )
            for a, b in pairs.tolist():
                union(int(a), int(b))
    touched = np.flatnonzero(labels >= 0)
    if touched.size:
        distinct = np.unique(labels[touched])
        mapping = {int(label): find(int(label)) for label in distinct}
        lookup = np.vectorize(mapping.__getitem__, otypes=[np.int64])
        labels[touched] = lookup(labels[touched])
    return labels
