"""Optional native (C) inner loop for the chunked fixpoint kernel.

``REPRO_CHUNKED_BACKEND=native`` asks the chunked kernel to run the two
per-group scans that dominate fixpoint iteration — the alive-flag
seeding and the frontier group-retirement pass — through a small C
library compiled on first use with the system C compiler and loaded via
:mod:`ctypes`.  Everything else (limb algebra, gathers, the planner's
matrix sweeps) stays on numpy.

This backend is **benchmarked but not load-bearing**: if no C compiler
is present, compilation fails, or numpy is unavailable, the request
silently degrades to the plain numpy backend — verdicts are identical
either way (the C loops are line-for-line the pure-Python reference
semantics), so nothing downstream may depend on which one ran.  The
kernel-parity tests exercise the native path when it is available and
skip otherwise.

The shared object is cached under the repro cache directory (or a
temporary directory when caching is disabled) keyed by a digest of the
C source, so the compiler runs once per source revision, not once per
process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional

from .. import obs

_SOURCE = r"""
#include <stdint.h>

/* Alive-flag seeding for one processor's group table: a group dies when
   some member entry (val & pmask) holds a point outside phi; a dead
   group ORs its member bits into bad.  Mirrors ChunkedIndex._seed_alive
   (pure-Python reference path) exactly. */
void seed_alive(
    long n_groups,
    const int64_t *starts,
    const int64_t *idx,
    const uint64_t *val,
    const uint64_t *pmask,
    const uint64_t *phi,
    uint64_t *bad,
    uint8_t *alive)
{
    for (long g = 0; g < n_groups; ++g) {
        int64_t s = starts[g], e = starts[g + 1];
        int ok = 1;
        for (int64_t k = s; k < e; ++k) {
            uint64_t rel = val[k] & pmask[idx[k]];
            if (rel & ~phi[idx[k]]) { ok = 0; break; }
        }
        alive[g] = (uint8_t) ok;
        if (!ok)
            for (int64_t k = s; k < e; ++k)
                bad[idx[k]] |= val[k] & pmask[idx[k]];
    }
}

/* Frontier pass: retire alive groups whose member bits intersect the
   freshly eliminated set delta, feeding their members into bad.
   Mirrors ChunkedIndex._kill_groups. */
void kill_groups(
    long n_groups,
    const int64_t *starts,
    const int64_t *idx,
    const uint64_t *val,
    const uint64_t *pmask,
    const uint64_t *delta,
    uint64_t *bad,
    uint8_t *alive)
{
    for (long g = 0; g < n_groups; ++g) {
        if (!alive[g]) continue;
        int64_t s = starts[g], e = starts[g + 1];
        int hit = 0;
        for (int64_t k = s; k < e; ++k)
            if (val[k] & delta[idx[k]] & pmask[idx[k]]) { hit = 1; break; }
        if (hit) {
            alive[g] = 0;
            for (int64_t k = s; k < e; ++k)
                bad[idx[k]] |= val[k] & pmask[idx[k]];
        }
    }
}
"""

_COMPILERS = ("cc", "gcc", "clang")

_lock = threading.Lock()
_loaded: Optional[object] = None
_attempted = False


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if not root:
        root = os.path.join(tempfile.gettempdir(), "repro_native")
    path = os.path.join(root, "native")
    os.makedirs(path, exist_ok=True)
    return path


def _compile() -> Optional[object]:
    """Compile (or load the cached) shared object; None on any failure."""
    digest = hashlib.sha256(_SOURCE.encode("utf-8")).hexdigest()[:16]
    try:
        directory = _cache_dir()
    except OSError:
        return None
    library = os.path.join(directory, f"fixpoint-{digest}.so")
    if not os.path.exists(library):
        source = os.path.join(directory, f"fixpoint-{digest}.c")
        try:
            with open(source, "w", encoding="utf-8") as handle:
                handle.write(_SOURCE)
        except OSError:
            return None
        for compiler in _COMPILERS:
            staging = library + f".tmp{os.getpid()}"
            command = [
                compiler, "-O2", "-shared", "-fPIC", source, "-o", staging
            ]
            try:
                proc = subprocess.run(
                    command,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    timeout=60,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if proc.returncode == 0:
                try:
                    os.replace(staging, library)
                except OSError:
                    return None
                break
            try:
                os.unlink(staging)
            except OSError:
                pass
        else:
            return None
    try:
        lib = ctypes.CDLL(library)
    except OSError:
        return None
    i64p = ctypes.POINTER(ctypes.c_int64)
    u64p = ctypes.POINTER(ctypes.c_uint64)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    for name in ("seed_alive", "kill_groups"):
        fn = getattr(lib, name)
        fn.argtypes = [
            ctypes.c_long, i64p, i64p, u64p, u64p, u64p, u64p, u8p
        ]
        fn.restype = None
    return lib


def requested() -> bool:
    """Whether ``REPRO_CHUNKED_BACKEND=native`` is in effect."""
    raw = os.environ.get("REPRO_CHUNKED_BACKEND", "").strip().lower()
    return raw == "native"


def library() -> Optional[object]:
    """The compiled library, or None (compile failure / no compiler).

    The first call pays the compile (or a dlopen of the cached ``.so``);
    failures are remembered so the compiler is not retried per sweep.
    """
    global _loaded, _attempted
    with _lock:
        if not _attempted:
            _attempted = True
            _loaded = _compile()
            obs.count(
                "native_backend_loaded"
                if _loaded is not None
                else "native_backend_unavailable"
            )
        return _loaded


def available() -> bool:
    """Whether the native library compiled and loaded."""
    return library() is not None


def _u64(array):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64))


def _i64(array):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def seed_alive(np, lib, starts, idx, val, pmask, phi, bad):
    """Native alive seeding; returns the bool alive vector.

    ``bad`` is mutated in place.  All buffers must be contiguous
    int64/uint64 numpy arrays (the chunked index's native layout).
    """
    n_groups = len(starts) - 1
    alive = np.zeros(n_groups, dtype=np.uint8)
    lib.seed_alive(
        n_groups,
        _i64(starts),
        _i64(idx),
        _u64(val),
        _u64(pmask),
        _u64(phi),
        _u64(bad),
        alive.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
    )
    return alive.view(np.bool_)


def kill_groups(np, lib, starts, idx, val, pmask, delta, bad, alive):
    """Native frontier retirement; mutates ``alive`` and ``bad`` in place."""
    lib.kill_groups(
        len(starts) - 1,
        _i64(starts),
        _i64(idx),
        _u64(val),
        _u64(pmask),
        _u64(delta),
        _u64(bad),
        alive.view(np.uint8).ctypes.data_as(
            ctypes.POINTER(ctypes.c_uint8)
        ),
    )
