"""Initial configurations: the vector of initial values.

The paper assumes each processor's initial state *is* its initial value
(Section 2.4), so an initial configuration is simply a tuple of ``n`` binary
values.  This module provides the configuration type plus enumeration helpers
used by the exhaustive system builders and the workload generators.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..core.values import Value, check_value
from ..errors import ConfigurationError


@dataclass(frozen=True)
class InitialConfiguration:
    """The list of processors' initial values (the paper's *initial
    configuration*).

    Attributes:
        values: ``values[i]`` is processor ``i``'s initial value.
    """

    values: Tuple[Value, ...]

    def __init__(self, values: Sequence[Value]) -> None:
        object.__setattr__(
            self, "values", tuple(check_value(v) for v in values)
        )
        if len(self.values) < 2:
            raise ConfigurationError(
                "a system needs at least 2 processors "
                f"(got configuration of length {len(self.values)})"
            )

    @property
    def n(self) -> int:
        """Number of processors."""
        return len(self.values)

    def value_of(self, processor: int) -> Value:
        """Initial value of *processor*."""
        return self.values[processor]

    def exists(self, value: Value) -> bool:
        """Whether some processor starts with *value* (the paper's ∃v)."""
        return value in self.values

    def all_equal(self, value: Value) -> bool:
        """Whether every processor starts with *value*."""
        return all(v == value for v in self.values)

    def count(self, value: Value) -> int:
        """How many processors start with *value*."""
        return sum(1 for v in self.values if v == value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "".join(str(v) for v in self.values)


def all_configurations(n: int) -> Iterator[InitialConfiguration]:
    """Yield all ``2**n`` initial configurations for an *n*-processor system.

    The order is lexicographic over the value vectors, which makes enumerated
    systems deterministic across runs and platforms.
    """
    if n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    for bits in itertools.product((0, 1), repeat=n):
        yield InitialConfiguration(bits)


def uniform_configuration(n: int, value: Value) -> InitialConfiguration:
    """The configuration in which every processor starts with *value*."""
    return InitialConfiguration((check_value(value),) * n)


def one_dissenter(n: int, dissenter: int, value: Value) -> InitialConfiguration:
    """All processors start with ``1 - value`` except *dissenter*.

    Useful for the adversarial scenario families in the paper's proofs, where
    a single (possibly faulty) processor holds the minority value.
    """
    values = [1 - check_value(value)] * n
    values[dissenter] = value
    return InitialConfiguration(values)
