"""Command-line interface: experiments, protocol comparisons and diagrams.

Usage::

    repro-eba list                 # show the experiment index
    repro-eba run E2 E8            # run selected experiments
    repro-eba run --all --skip E9  # everything except the heavy cell
    repro-eba protocols            # show the protocol registry
    repro-eba compare P0opt P0 --mode crash -n 4 -t 1
    repro-eba diagram P0opt --config 011 --crash 0:1:1
    repro-eba stats                # system-cache state and disk inventory
    repro-eba stats --json         # the same, machine-readable
    repro-eba run E2 --stats       # append instrumentation totals
    repro-eba trace run E04 --out trace.json   # Chrome/Perfetto trace
    repro-eba explain E4           # list explainable formulas for E4
    repro-eba explain E4 common-exists1 --point 5:2
    repro-eba bench-compare --history BENCH_HISTORY.jsonl
    repro-eba batch run E9 --workers 4 --resume   # sharded execution
    repro-eba batch status         # checkpointed batches on disk
    repro-eba batch top            # live dashboard of the latest batch
    repro-eba batch top E9 --once  # one frame, for scripts and CI
    repro-eba metrics              # Prometheus text of this process
    repro-eba metrics --journal PATH   # fold a telemetry.jsonl instead
    repro-eba monitor --config 011 --crash 0:1 --rounds 3
                                   # stream a scenario; online K/E/C□
    repro-eba serve                # long-lived knowledge-query daemon
    repro-eba query eval --catalog E4/common-exists1
                                   # query the daemon (in-process fallback)
    repro-eba metrics --socket .repro_serve.sock  # scrape a live daemon

Experiment ids are normalized (``E04``, ``e4`` and ``4`` all mean
``E4``).  ``batch run`` executes an experiment through the sharded,
checkpointed :mod:`repro.exec` engine (resume an interrupted batch with
``--resume``; tune with ``--workers/--shard-size/--timeout/--retries`` or
the matching ``REPRO_EXEC_*`` env vars); ``batch status`` lists the
checkpoint directories under ``.repro_cache/exec/``.  A SIGINT anywhere in
the CLI flushes partial instrumentation to stderr and exits with status
130 (and ``REPRO_INTERRUPT_TRACE=PATH`` additionally dumps buffered spans
as JSONL).  ``trace run`` executes experiments with the span tracer on and
writes the finished spans as a Chrome trace-event file (loadable in
``chrome://tracing`` or Perfetto) or as JSONL.  ``explain`` re-derives a
knowledge verdict together with machine-checkable evidence — an
indistinguishability chain to a counterexample point, or the Corollary 3.3
reachability component.  ``bench-compare`` diffs micro-bench snapshots
recorded by ``benchmarks/regression.py``.

``--stats`` (available on ``run``, ``compare`` and ``diagram``) prints the
process-wide :mod:`repro.obs` instrumentation — stage wall times, runs
built, cache hits/misses, fixpoint iterations, histogram digests — after
the command's normal output.  ``stats`` inspects the persistent caches
themselves (plus the span tracer's ring-buffer health: capacity, fill,
watermark and dropped-span total); ``stats --clear`` empties the caches.
``metrics`` renders the same instrumentation as Prometheus text
exposition — of this process, or of a batch run's ``telemetry.jsonl``
via ``--journal``.  ``batch top`` tails a batch's ``health.json`` and
telemetry journal into a live per-worker dashboard (inflight shard,
attempt, heartbeat age, RSS, shard-latency p50/p95, retries by cause);
``--once`` prints a single frame and exits.

Failure patterns on the command line use a mini-language:

* ``--crash P:K`` — processor P crashes in round K delivering nothing;
  ``--crash P:K:R1,R2`` delivers the round-K message to R1 and R2 only.
* ``--omit P:K:D1,D2`` — processor P omits its round-K messages to D1, D2
  (repeat the flag for more rounds/processors; sending omissions).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from .errors import ReproError
from .experiments.registry import EXPERIMENTS, run_experiment

_DESCRIPTIONS = {
    "E1": "No optimum EBA protocol (Proposition 2.1)",
    "E2": "P0opt strictly dominates P0 (Section 2.2)",
    "E3": "S5 axioms for K_i (Proposition 3.1)",
    "E4": "Continual common knowledge axioms (Lemma 3.4)",
    "E5": "Knowledge conditions for agreement (Propositions 4.3/4.4)",
    "E6": "Two-step optimal construction (Theorem 5.2)",
    "E7": "Optimality characterization (Theorem 5.3)",
    "E8": "Crash-mode collapse of F^{Λ,2} (Theorems 6.1/6.2)",
    "E9": "Omission non-termination of F^{Λ,2} (Proposition 6.3) [heavy]",
    "E10": "Chain protocol decides by f+1 (Proposition 6.4)",
    "E11": "F* optimal for omission EBA (Proposition 6.6)",
    "E12": "EBA vs SBA decision times ([DRS90] motivation)",
    "E13": "Full-information universality (Prop 2.2 / Cor 2.3)",
    "E14": "Scaling ablation (reproduction cost model)",
    "E15": "Beyond the analyzed failure modes ([PT86] ablation)",
    "E16": "Optimum SBA baseline reproduced concretely ([DM90])",
    "E17": "Multivalued agreement (the 'general case' extension)",
    "E18": "Uniform agreement ablation ([Nei90]/[NB92], Section 7)",
    "E19": "Byzantine EIG and the n > 3t threshold (Section 7)",
    "E20": "Scaling sweep: optimal-EBA gains at larger n and t",
    "E21": "Eventual common knowledge is the wrong tool (Section 3.2)",
}


def _cmd_list() -> int:
    for experiment_id in EXPERIMENTS:
        print(f"{experiment_id:4} {_DESCRIPTIONS.get(experiment_id, '')}")
    return 0


def normalize_experiment_id(experiment_id: str) -> str:
    """Canonicalize user-supplied experiment ids: E04 / e4 / 4 -> E4."""
    text = experiment_id.strip().upper()
    if text.startswith("E"):
        text = text[1:]
    if text.isdigit():
        return f"E{int(text)}"
    return experiment_id


def _cmd_run(
    ids: List[str],
    run_all: bool,
    skip: List[str],
    json_path: str = None,
    *,
    plan: bool = False,
) -> int:
    skip = [normalize_experiment_id(eid) for eid in skip]
    selected = (
        list(EXPERIMENTS)
        if run_all
        else [normalize_experiment_id(eid) for eid in ids]
    )
    selected = [eid for eid in selected if eid not in skip]
    if not selected:
        print("nothing to run; try `repro-eba list`", file=sys.stderr)
        return 2
    failures = 0
    exported = []
    from contextlib import nullcontext

    from .knowledge.planner import use_planner

    for experiment_id in selected:
        start = time.perf_counter()
        with use_planner() if plan else nullcontext():
            result = run_experiment(experiment_id)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"(took {elapsed:.1f}s)")
        print()
        if not result.ok:
            failures += 1
        if json_path is not None:
            from .io.export import experiment_result_to_json

            entry = experiment_result_to_json(result)
            entry["seconds"] = round(elapsed, 3)
            exported.append(entry)
    if json_path is not None:
        import json as json_module

        with open(json_path, "w") as handle:
            json_module.dump(exported, handle, indent=2)
        print(f"wrote {len(exported)} result(s) to {json_path}")
    if failures:
        print(f"{failures} experiment(s) did NOT reproduce", file=sys.stderr)
        return 1
    print(f"all {len(selected)} experiment(s) reproduced")
    return 0


def parse_crash_spec(spec: str):
    """Parse ``P:K`` or ``P:K:R1,R2`` into (processor, CrashBehavior)."""
    from .model.failures import CrashBehavior

    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ReproError(
            f"bad --crash spec {spec!r}; expected P:K or P:K:R1,R2"
        )
    processor = int(parts[0])
    crash_round = int(parts[1])
    receivers = (
        frozenset(int(r) for r in parts[2].split(",") if r)
        if len(parts) == 3
        else frozenset()
    )
    return processor, CrashBehavior(crash_round, receivers)


def parse_omit_specs(specs: List[str]):
    """Parse repeated ``P:K:D1,D2`` into {processor: OmissionBehavior}."""
    from .model.failures import OmissionBehavior

    tables: Dict[int, Dict[int, List[int]]] = {}
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ReproError(
                f"bad --omit spec {spec!r}; expected P:K:D1,D2"
            )
        processor = int(parts[0])
        round_number = int(parts[1])
        destinations = [int(d) for d in parts[2].split(",") if d]
        table = tables.setdefault(processor, {})
        table.setdefault(round_number, []).extend(destinations)
    return {
        processor: OmissionBehavior(table)
        for processor, table in tables.items()
    }


def _build_pattern(crash_specs: List[str], omit_specs: List[str]):
    from .model.failures import FailurePattern

    behaviors = {}
    for spec in crash_specs:
        processor, behavior = parse_crash_spec(spec)
        behaviors[processor] = behavior
    behaviors.update(parse_omit_specs(omit_specs))
    return FailurePattern(behaviors)


def _print_stats() -> None:
    """Print the process-wide instrumentation and system-cache counters."""
    from . import obs, trace
    from .model.builder import system_cache_info
    from .model.kernels import active_kernel, kernel_selections

    print("instrumentation (this process):")
    print(obs.format_summary())
    status = trace.tracer_status()
    print("span tracer:")
    print(
        f"  {'enabled' if status['enabled'] else 'disabled'}, "
        f"{status['buffered']}/{status['capacity']} buffered, "
        f"watermark {status['watermark']}, "
        f"{status['dropped']} dropped"
    )
    info = system_cache_info()
    print("system cache:")
    print(
        f"  memory: {info['size']}/{info['max_size']} entries, "
        f"{info['hits']} hits, {info['misses']} misses, "
        f"{info['evictions']} evictions"
    )
    print(
        f"  disk:   {'enabled' if info['disk_enabled'] else 'disabled'} "
        f"({info['cache_dir']}), "
        f"{info['disk_hits']} hits, {info['disk_misses']} misses, "
        f"{info['disk_prunes']} stale file(s) pruned, "
        f"{info['disk_stale']} stale on disk"
    )
    print(f"  kernel: {active_kernel()} (selected)")
    selections = kernel_selections()
    if selections:
        print("kernel resolutions (per system, this process):")
        for entry in selections:
            marker = (
                f"  [upgraded from {entry['requested']}]"
                if entry["upgraded"]
                else ""
            )
            print(
                f"  {entry['system']:<40} {entry['points']:>9} points"
                f" -> {entry['selected']}{marker}"
            )


def _cmd_stats(clear: bool, as_json: bool = False) -> int:
    from .model.builder import clear_system_cache
    from .model.provider import get_provider

    if clear:
        stats = clear_system_cache(disk=True)
        print(
            f"cleared: {stats['evicted']} in-memory system(s), "
            f"{stats['arrays_evicted']} in-memory array projection(s), "
            f"{stats['disk_files_removed']} disk file(s)"
        )
        return 0
    if as_json:
        import json as json_module

        from . import obs, trace
        from .model.builder import system_cache_info

        from .model.kernels import active_kernel, kernel_selections

        payload = {
            "instrumentation": obs.snapshot(),
            "tracer": trace.tracer_status(),
            "system_cache": system_cache_info(),
            "disk_entries": get_provider().disk_entries(),
            "kernel": active_kernel(),
            "kernel_selections": kernel_selections(),
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    _print_stats()
    entries = get_provider().disk_entries()
    if entries:
        print("disk cache inventory:")
        for entry in entries:
            marker = "  (stale)" if entry.get("stale") else ""
            print(
                f"  {entry['file']:<48} {entry['bytes']:>12} bytes{marker}"
            )
    else:
        print("disk cache inventory: (empty)")
    return 0


def _cmd_metrics(journal_path: str = None, socket_path: str = None) -> int:
    """Prometheus text exposition of an instrumentation snapshot.

    With no argument, exposes this process's totals; with ``--journal``,
    folds a batch run's ``telemetry.jsonl`` back into a snapshot first;
    with ``--socket``, scrapes a live serve daemon's ``healthz``.
    """
    from . import obs
    from .obs.metrics import prometheus_text

    if socket_path is not None:
        from .serve.client import ServeClient

        try:
            with ServeClient(socket_path, timeout=10.0) as client:
                sys.stdout.write(client.healthz()["prometheus"])
        except ReproError as error:
            print(f"cannot scrape {socket_path}: {error}", file=sys.stderr)
            return 2
        return 0
    if journal_path is not None:
        from .obs.journal import fold_journal, read_journal

        try:
            folded = fold_journal(read_journal(journal_path))
        except OSError as error:
            print(f"cannot read {journal_path}: {error}", file=sys.stderr)
            return 2
        summary = folded["metrics"]
    else:
        summary = obs.snapshot()
    sys.stdout.write(prometheus_text(summary))
    return 0


def _resolve_top_batch(batch: str = None):
    """The batch entry ``batch top`` should watch.

    *batch* may be a full batch key, a prefix, or a bare experiment id;
    with no argument the batch whose journal changed most recently wins.
    """
    import os

    from .exec.checkpoint import list_batches

    entries = [e for e in list_batches() if e.get("journal")]
    if batch is not None:
        key = batch.strip()
        experiment = normalize_experiment_id(key)
        entries = [
            entry
            for entry in entries
            if entry["batch"] == key
            or entry["batch"].startswith(key)
            or entry["experiment"] == experiment
        ]
    def mtime(entry):
        try:
            return os.path.getmtime(entry["journal"])
        except OSError:
            return 0.0
    return max(entries, key=mtime) if entries else None


def _render_top_frame(entry) -> str:
    """One ``batch top`` frame from a batch's journal + health snapshot."""
    from .exec.checkpoint import CheckpointStore
    from .obs.journal import (
        fold_journal,
        read_journal,
        worker_latency_quantiles,
    )

    folded = fold_journal(read_journal(entry["journal"]))
    store = CheckpointStore(entry["batch"])
    health = store.load_health() or entry.get("health") or {}
    now = time.time()
    meta = folded["meta"]
    shards = folded["shards"]
    done = folded["done"]
    lines = [
        f"batch {entry['batch']}  experiment {meta.get('experiment', '?')}"
    ]
    state = (
        f"finished ({'ok' if done.get('ok') else 'FAILED'}, "
        f"{done.get('seconds', 0):.1f}s)"
        if done
        else "running"
    )
    lines.append(
        f"shards {shards['done']} done / {shards['started']} started"
        f" / {shards['resumed']} resumed   retries {shards['retries']}"
        f"   state {state}"
    )
    causes = shards["retries_by_cause"]
    if causes:
        lines.append(
            "retries by cause: "
            + ", ".join(
                f"{cause}={count}" for cause, count in sorted(causes.items())
            )
        )
    # Freshest heartbeat ages come from health.json when it is newer
    # than the last journal event for that worker.
    beat_age = {}
    for row in health.get("worker_detail") or []:
        if row.get("heartbeat_age") is not None:
            beat_age[row["pid"]] = (
                row["heartbeat_age"] + max(0.0, now - health.get("updated", now))
            )
    header = (
        f"  {'worker':>8} {'state':<22} {'beat age':>9} {'rss':>9} "
        f"{'cpu s':>7} {'done':>5} {'retry':>5} {'p50':>8} {'p95':>8}"
    )
    lines.append("")
    lines.append(header)
    for pid in sorted(folded["workers"]):
        worker = folded["workers"][pid]
        inflight = worker.get("inflight")
        if inflight:
            state_text = (
                f"{inflight['shard']}#{inflight['attempt']}"
            )[:22]
        else:
            state_text = "idle"
        age = beat_age.get(pid)
        if age is None and worker.get("last_event_ts") is not None:
            age = now - worker["last_event_ts"]
        sample = worker.get("last_sample") or {}
        rss = sample.get("rss_bytes")
        cpu = sample.get("cpu_seconds")
        quantiles = worker_latency_quantiles(worker)
        lines.append(
            f"  {pid:>8} {state_text:<22} "
            f"{(f'{age:.1f}s' if age is not None else '-'):>9} "
            f"{(f'{rss / (1 << 20):.0f}M' if rss else '-'):>9} "
            f"{(f'{cpu:.1f}' if cpu is not None else '-'):>7} "
            f"{worker['shards_done']:>5} {worker['retries']:>5} "
            f"{quantiles['p50'] * 1000:>6.1f}ms {quantiles['p95'] * 1000:>6.1f}ms"
        )
    if not folded["workers"]:
        lines.append("  (no worker events in the journal yet)")
    if folded["stages"]:
        lines.append("")
        lines.append("stages:")
        for stage in folded["stages"]:
            lines.append(
                f"  {stage['stage']:<28} {stage['seconds']:>9.3f}s"
            )
    return "\n".join(lines)


def _cmd_batch_top(batch: str, once: bool, interval: float) -> int:
    """Live terminal dashboard over ``health.json`` + the journal."""
    entry = _resolve_top_batch(batch)
    if entry is None:
        target = batch or "any batch"
        print(
            f"no checkpointed batch with a telemetry journal ({target}); "
            "run `repro-eba batch run ...` first",
            file=sys.stderr,
        )
        return 2
    if once:
        print(_render_top_frame(entry))
        return 0
    from .obs.journal import fold_journal, read_journal

    try:
        while True:
            frame = _render_top_frame(entry)
            # ANSI clear + home keeps the dashboard in place per refresh.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            folded = fold_journal(read_journal(entry["journal"]))
            if folded["done"]:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_trace(ids: List[str], out_path: str, fmt: str) -> int:
    """Run experiments under the span tracer; export the finished spans."""
    from . import trace as spantrace
    from .trace import write_chrome_trace, write_jsonl

    ids = [normalize_experiment_id(eid) for eid in ids]
    mark = spantrace.watermark()
    failures = 0
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.render())
        print()
        if not result.ok:
            failures += 1
    spans = spantrace.collect(mark)
    if fmt == "jsonl":
        count = write_jsonl(spans, out_path)
    else:
        count = write_chrome_trace(spans, out_path)
    print(f"wrote {count} span(s) to {out_path} ({fmt})")
    return 1 if failures else 0


def _parse_point(spec: str):
    parts = spec.split(":")
    if len(parts) != 2:
        raise ReproError(f"bad --point spec {spec!r}; expected RUN:TIME")
    return (int(parts[0]), int(parts[1]))


def _cmd_explain(
    experiment_id: str, formula_key: str, point_spec: str, n: int, t: int
) -> int:
    """Explain a catalog formula's verdict, with a machine re-check."""
    from .knowledge.explain import (
        EXPLAIN_CATALOG,
        catalog_system,
        default_point,
        explain,
        render_explanation,
    )

    experiment_id = normalize_experiment_id(experiment_id)
    entries = EXPLAIN_CATALOG.get(experiment_id)
    if not entries:
        print(
            f"no explainable formulas registered for {experiment_id}; "
            f"available: {', '.join(EXPLAIN_CATALOG)}",
            file=sys.stderr,
        )
        return 2
    if formula_key is None:
        for key, entry in entries.items():
            print(f"{key:<28} {entry.description}")
        return 0
    entry = entries.get(formula_key)
    if entry is None:
        print(
            f"unknown formula {formula_key!r} for {experiment_id}; "
            f"available: {', '.join(entries)}",
            file=sys.stderr,
        )
        return 2
    system = catalog_system(entry, n, t)
    formula = entry.build(system)
    point = (
        _parse_point(point_spec)
        if point_spec is not None
        else default_point(system, formula)
    )
    explanation = explain(system, formula, point)
    print(render_explanation(explanation))
    problems = explanation.check(system)
    if problems:
        print("machine check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("machine check: OK")
    return 0


def _cmd_bench_compare(
    paths: List[str], history: str, threshold: float
) -> int:
    """Diff two bench snapshots (files, or the history's last two)."""
    from .bench.regression import (
        compare_snapshots,
        load_history,
        load_snapshot,
    )

    if history is not None:
        snapshots = load_history(history)
        if len(snapshots) < 2:
            print(
                f"history {history} holds {len(snapshots)} snapshot(s); "
                "need 2 to compare — nothing to do"
            )
            return 0
        baseline, candidate = snapshots[-2], snapshots[-1]
    elif len(paths) == 2:
        baseline = load_snapshot(paths[0])
        candidate = load_snapshot(paths[1])
    else:
        print(
            "give two snapshot files, or --history FILE for its last "
            "two entries",
            file=sys.stderr,
        )
        return 2
    report = compare_snapshots(baseline, candidate, threshold=threshold)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_protocols() -> int:
    from .protocols.registry import (
        CONCRETE_PROTOCOLS,
        KNOWLEDGE_PROTOCOLS,
    )

    print("concrete (simulator) protocols:")
    for name in CONCRETE_PROTOCOLS:
        print(f"  {name}")
    print("knowledge-level protocols (need an enumerated system):")
    for name in KNOWLEDGE_PROTOCOLS:
        print(f"  {name}")
    return 0


def _cmd_compare(names: List[str], mode: str, n: int, t: int) -> int:
    from .core.domination import compare
    from .core.specs import check_eba
    from .metrics.stats import decision_time_stats
    from .metrics.tables import format_float, render_table
    from .model.builder import system_for
    from .model.failures import FailureMode
    from .protocols.registry import outcome_for

    system = system_for(FailureMode(mode), n, t)
    outcomes = [outcome_for(name, system) for name in names]
    rows = []
    for outcome in outcomes:
        stats = decision_time_stats(outcome)
        rows.append(
            [outcome.name, check_eba(outcome).ok,
             format_float(stats.mean), stats.maximum, stats.undecided]
        )
    print(
        render_table(
            ["protocol", "EBA", "mean t", "max t", "undecided"], rows
        )
    )
    print()
    for first in outcomes:
        for second in outcomes:
            if first is not second:
                print(compare(first, second))
    return 0


def _cmd_diagram(
    name: str,
    mode: str,
    n: int,
    t: int,
    config_bits: str,
    crash_specs: List[str],
    omit_specs: List[str],
) -> int:
    from .analysis.diagram import render_outcome_diagram
    from .model.config import InitialConfiguration

    config = InitialConfiguration([int(bit) for bit in config_bits])
    if config.n != n:
        raise ReproError(
            f"--config {config_bits!r} has {config.n} bits but n={n}"
        )
    pattern = _build_pattern(crash_specs, omit_specs).validate(n, t)
    from .protocols.registry import is_knowledge_level

    if is_knowledge_level(name):
        from .model.builder import system_for
        from .model.failures import FailureMode

        system = system_for(FailureMode(mode), n, t)
        from .protocols.registry import outcome_for

        outcome = outcome_for(name, system)
        run = outcome.get((config, pattern))
    else:
        from .protocols.registry import CONCRETE_PROTOCOLS
        from .sim.engine import execute

        run = execute(
            CONCRETE_PROTOCOLS[name](), config, pattern, t + 2, t
        ).to_outcome()
    print(f"protocol: {name}")
    print(render_outcome_diagram(run))
    return 0


def _parse_recv_omit_specs(specs: List[str]):
    """Parse repeated ``P:K:S1,S2`` into {processor: ReceiveOmissionBehavior}."""
    from .model.failures import ReceiveOmissionBehavior

    tables: Dict[int, Dict[int, List[int]]] = {}
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ReproError(
                f"bad --recv-omit spec {spec!r}; expected P:K:S1,S2"
            )
        processor = int(parts[0])
        round_number = int(parts[1])
        senders = [int(s) for s in parts[2].split(",") if s]
        table = tables.setdefault(processor, {})
        table.setdefault(round_number, []).extend(senders)
    return {
        processor: ReceiveOmissionBehavior(table)
        for processor, table in tables.items()
    }


def _cmd_monitor(
    mode: str,
    n: int,
    t: int,
    config_bits: str,
    crash_specs: List[str],
    omit_specs: List[str],
    recv_omit_specs: List[str],
    rounds: int,
    value: int,
    journal_path: Optional[str],
) -> int:
    """Stream one scenario round by round with online K/E/C□ verdicts."""
    from .model.config import InitialConfiguration
    from .model.failures import FailureMode, FailurePattern
    from .sim.monitor import StreamingMonitor

    config = InitialConfiguration([int(bit) for bit in config_bits])
    if config.n != n:
        raise ReproError(
            f"--config {config_bits!r} has {config.n} bits but n={n}"
        )
    pattern = _build_pattern(crash_specs, omit_specs)
    if recv_omit_specs:
        behaviors = dict(pattern.behaviors)
        behaviors.update(_parse_recv_omit_specs(recv_omit_specs))
        pattern = FailurePattern(behaviors)
    journal = None
    if journal_path is not None:
        from .obs.journal import TelemetryJournal

        journal = TelemetryJournal(
            journal_path, batch="monitor", experiment="monitor"
        )
    monitor = StreamingMonitor(
        FailureMode(mode), n, t, config, pattern,
        value=value, journal=journal,
    )
    print(
        f"monitoring {mode} n={n} t={t} config={config_bits} "
        f"value={value} — {pattern}"
    )
    for _ in range(rounds):
        record = monitor.advance()
        verdicts = record["verdicts"]
        knows = " ".join(
            f"{p}:{'yes' if known else 'no'}"
            for p, known in enumerate(verdicts["knows"])
        )
        print(
            f"round {record['round']:>2}  "
            f"K∃{value}: {knows}   "
            f"E∃{value}: {'yes' if verdicts['everyone'] else 'no'}   "
            f"C□∃{value}: {'yes' if verdicts['continual_common'] else 'no'}"
            f"   ({record['seconds']:.3f}s)"
        )
    if journal is not None:
        journal.close()
        print(f"journal: {journal_path}")
    return 0


def _parse_batch_params(specs: List[str]) -> Dict[str, int]:
    """Parse repeated ``--param key=value`` overrides (integer values)."""
    params: Dict[str, int] = {}
    for spec in specs:
        key, sep, value = spec.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ReproError(
                f"--param {spec!r} must look like key=value"
            )
        try:
            params[key] = int(value)
        except ValueError:
            raise ReproError(
                f"--param {spec!r} has a non-integer value {value!r}"
            ) from None
    return params


def _cmd_batch(args) -> int:
    from .exec.checkpoint import list_batches
    from .exec.plan import plan_for, run_batch

    if args.batch_action == "top":
        return _cmd_batch_top(
            args.batch_ids[0] if args.batch_ids else None,
            args.once,
            args.interval,
        )

    if args.batch_action == "status":
        entries = list_batches()
        if not entries:
            print("no checkpointed batches")
            return 0
        from .metrics.tables import render_table

        def _health_cells(entry):
            causes = entry.get("retry_causes") or {}
            cause_text = (
                ",".join(
                    f"{cause}:{count}"
                    for cause, count in sorted(causes.items())
                )
                or "-"
            )
            age = entry.get("max_heartbeat_age")
            return [
                entry.get("retries", 0),
                cause_text,
                entry.get("inflight", 0),
                f"{age:.1f}s" if age is not None else "-",
            ]

        print(
            render_table(
                ["batch", "experiment", "kernel", "shards", "bytes",
                 "retries", "retry causes", "inflight", "beat age"],
                [
                    [entry["batch"], entry["experiment"], entry["kernel"],
                     entry["shards"], entry["bytes"]] + _health_cells(entry)
                    for entry in entries
                ],
            )
        )
        return 0

    if not args.batch_ids:
        print("nothing to run; try `repro-eba batch run E9`", file=sys.stderr)
        return 2
    params = _parse_batch_params(args.param)
    failures = 0
    for experiment_id in args.batch_ids:
        experiment_id = normalize_experiment_id(experiment_id)
        plan = plan_for(experiment_id, **params)
        start = time.perf_counter()
        try:
            result = run_batch(
                plan,
                workers=args.workers,
                resume=args.resume,
                shard_size=args.shard_size,
                timeout=args.timeout,
                retries=args.retries,
            )
        except KeyboardInterrupt:
            print(
                f"\nbatch interrupted; completed shards are checkpointed — "
                f"resume with: repro-eba batch run {experiment_id} --resume",
                file=sys.stderr,
            )
            raise
        elapsed = time.perf_counter() - start
        print(result.render())
        batch = result.data.get("batch", {})
        print(
            f"(batch {batch.get('key', '?')}: {batch.get('shards', '?')} "
            f"shards, {batch.get('resumed', 0)} resumed, "
            f"{batch.get('workers', '?')} workers, took {elapsed:.1f}s)"
        )
        print()
        if not result.ok:
            failures += 1
    return 1 if failures else 0


def _cmd_serve(args) -> int:
    """Run the long-lived knowledge-query daemon (repro.serve)."""
    from .serve.queue import QueryBudget
    from .serve.server import ServeConfig, run_server

    budget = QueryBudget.resolve(args.max_points, args.timeout)
    config = ServeConfig(
        socket_path=None if args.port is not None else args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        budget=budget,
        journal_path=args.journal,
        debug=args.debug,
    )
    return run_server(config)


def _parse_catalog_ref(spec: str) -> Dict[str, str]:
    """``E4/common-exists1`` -> the wire catalog reference."""
    if "/" not in spec:
        raise ReproError(
            f"bad --catalog spec {spec!r}; expected EXPERIMENT/FORMULA "
            f"(e.g. E4/common-exists1)"
        )
    experiment, _, formula = spec.partition("/")
    return {
        "experiment": normalize_experiment_id(experiment),
        "formula": formula,
    }


def _query_params(args) -> Dict[str, object]:
    """The wire ``params`` object for one ``repro-eba query`` invocation."""
    import json as json_module

    op = args.query_op
    params: Dict[str, object] = {}
    if op in ("stats", "healthz"):
        return params
    if op == "monitor":
        if not args.config:
            raise ReproError("query monitor needs --config")
        params = {
            "mode": args.mode or "crash",
            "n": args.n if args.n is not None else 3,
            "t": args.t if args.t is not None else 1,
            "config": args.config,
            "rounds": args.rounds,
        }
        if args.crash:
            params["crash"] = args.crash
        if args.omit:
            params["omit"] = args.omit
        if args.recv_omit:
            params["recv_omit"] = args.recv_omit
        if args.value is not None:
            params["value"] = args.value
        return params
    if op == "extend":
        if args.horizon is None:
            raise ReproError("query extend needs --horizon")
        return {
            "mode": args.mode or "crash",
            "n": args.n if args.n is not None else 3,
            "t": args.t if args.t is not None else 1,
            "horizon": args.horizon,
        }
    # eval / explain
    if args.catalog:
        params["catalog"] = _parse_catalog_ref(args.catalog)
    if op == "eval" and args.formula:
        try:
            params["formula"] = json_module.loads(args.formula)
        except ValueError as error:
            raise ReproError(
                f"--formula is not valid JSON: {error}"
            ) from None
    if op == "eval" and not params:
        raise ReproError("query eval needs --catalog or --formula")
    if op == "explain" and "catalog" not in params:
        raise ReproError("query explain needs --catalog")
    for name in ("mode", "n", "t", "horizon"):
        value = getattr(args, name)
        if value is not None and not (op == "explain" and name in
                                      ("mode", "horizon")):
            params[name] = value
    if args.point:
        params["point"] = list(_parse_point(args.point))
    if op == "eval" and args.kernel:
        params["kernel"] = args.kernel
    return params


def _cmd_query(args) -> int:
    """One knowledge query — against a live daemon, or in-process.

    With a reachable daemon on ``--socket`` (or ``--port``) the query
    goes over the wire; otherwise it falls back to the same
    :class:`~repro.serve.session.QueryEngine` in-process (identical code
    path, so verdicts match byte for byte).  ``--local`` forces the
    fallback, ``--remote`` forbids it.
    """
    import json as json_module

    from .serve.client import ServeClient, ServeError, daemon_available

    op = args.query_op
    params = _query_params(args)

    def show(obj) -> None:
        print(json_module.dumps(obj, indent=2, sort_keys=True))

    use_daemon = not args.local and daemon_available(
        None if args.port is not None else args.socket,
        host=args.host,
        port=args.port,
    )
    if args.remote and not use_daemon:
        print(
            f"no daemon reachable at "
            f"{args.socket if args.port is None else args.port} "
            f"(--remote forbids the in-process fallback)",
            file=sys.stderr,
        )
        return 2
    if use_daemon:
        try:
            with ServeClient(
                None if args.port is not None else args.socket,
                host=args.host,
                port=args.port,
            ) as client:
                if op == "monitor":
                    for frame in client.stream(op, **params):
                        show(frame)
                else:
                    show(client.request(op, **params))
        except ServeError as error:
            print(f"query failed: {error}", file=sys.stderr)
            return 1
        return 0
    # In-process fallback: a cold path by definition — build what the
    # query needs directly, no fork-pool.
    from .serve.queue import BudgetExceeded, QueryBudget
    from .serve.session import QueryEngine

    if op in ("stats", "healthz"):
        print(
            "stats/healthz need a live daemon (start one with "
            "`repro-eba serve`)",
            file=sys.stderr,
        )
        return 2
    engine = QueryEngine(
        budget=QueryBudget.resolve(args.max_points, args.timeout),
        fork_policy="never",
    )
    try:
        result = engine.execute(op, params, emit=show)
        show(result)
    except (BudgetExceeded, ReproError, KeyError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"query failed: {message}", file=sys.stderr)
        return 1
    finally:
        engine.close()
    return 0


def main(argv: List[str] = None) -> int:
    """Top-level entry point with interrupt hardening.

    A ``KeyboardInterrupt`` anywhere below is caught here: partial
    instrumentation is flushed to stderr (and buffered spans to
    ``REPRO_INTERRUPT_TRACE`` if set) before exiting with the
    conventional SIGINT status 130.
    """
    try:
        return _dispatch(argv)
    except KeyboardInterrupt:
        return _handle_interrupt()


def _handle_interrupt() -> int:
    import os

    from . import obs, trace

    print("\ninterrupted (SIGINT)", file=sys.stderr)
    summary = obs.format_summary()
    if summary:
        print("partial instrumentation:", file=sys.stderr)
        print(summary, file=sys.stderr)
    spans = trace.collect()
    out = os.environ.get("REPRO_INTERRUPT_TRACE")
    if out and spans:
        try:
            trace.write_jsonl(spans, out)
            print(f"flushed {len(spans)} span(s) to {out}", file=sys.stderr)
        except OSError as error:
            print(f"could not flush spans to {out}: {error}", file=sys.stderr)
    elif spans:
        print(
            f"{len(spans)} span(s) buffered; set REPRO_INTERRUPT_TRACE=PATH "
            "to dump them on interrupt",
            file=sys.stderr,
        )
    return 130


def _dispatch(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eba",
        description=(
            "Reproduction harness for 'A Characterization of Eventual "
            "Byzantine Agreement' (Halpern, Moses & Waarts, PODC 1990)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="show the experiment index")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("ids", nargs="*", help="experiment ids (E1..E21)")
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    run_parser.add_argument(
        "--skip", nargs="*", default=[], help="experiment ids to skip"
    )
    run_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the results as JSON to PATH",
    )
    run_parser.add_argument(
        "--stats", action="store_true",
        help="print instrumentation totals after the run",
    )
    run_parser.add_argument(
        "--plan", action="store_true",
        help="route formula portfolios through the fused evaluation "
        "planner (batched kernel sweeps; identical verdicts)",
    )
    subparsers.add_parser("protocols", help="show the protocol registry")
    stats_parser = subparsers.add_parser(
        "stats", help="show instrumentation and system-cache state"
    )
    stats_parser.add_argument(
        "--clear", action="store_true",
        help="clear the in-memory and on-disk system caches",
    )
    stats_parser.add_argument(
        "--json", action="store_true",
        help="emit the stats as JSON (obs.snapshot() shape)",
    )
    trace_parser = subparsers.add_parser(
        "trace", help="run experiments and export a span trace"
    )
    trace_parser.add_argument(
        "action", choices=["run"], help="only 'run' is defined"
    )
    trace_parser.add_argument(
        "trace_ids", nargs="+", metavar="ID", help="experiment ids"
    )
    trace_parser.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="output file (default trace.json)",
    )
    trace_parser.add_argument(
        "--format", default="chrome", choices=["chrome", "jsonl"],
        help="chrome trace-event JSON (Perfetto-loadable) or raw JSONL",
    )
    explain_parser = subparsers.add_parser(
        "explain", help="explain a knowledge verdict with checkable evidence"
    )
    explain_parser.add_argument("experiment", help="experiment id, e.g. E4")
    explain_parser.add_argument(
        "formula", nargs="?", default=None,
        help="catalog formula key (omit to list them)",
    )
    explain_parser.add_argument(
        "--point", default=None, metavar="RUN:TIME",
        help="point to explain (default: first failing point)",
    )
    explain_parser.add_argument("-n", type=int, default=3)
    explain_parser.add_argument("-t", type=int, default=1)
    bench_parser = subparsers.add_parser(
        "bench-compare", help="diff micro-bench snapshots for regressions"
    )
    bench_parser.add_argument(
        "snapshots", nargs="*", metavar="SNAPSHOT",
        help="two snapshot JSON files (or use --history)",
    )
    bench_parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="JSONL history; compares its last two entries",
    )
    bench_parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="slowdown fraction that counts as a regression (default 0.25)",
    )
    compare_parser = subparsers.add_parser(
        "compare", help="compare protocols over an exhaustive system"
    )
    compare_parser.add_argument("names", nargs="+", help="protocol names")
    compare_parser.add_argument("--mode", default="crash",
                                choices=["crash", "omission"])
    compare_parser.add_argument("-n", type=int, default=3)
    compare_parser.add_argument("-t", type=int, default=1)
    compare_parser.add_argument(
        "--stats", action="store_true",
        help="print instrumentation totals after the comparison",
    )
    diagram_parser = subparsers.add_parser(
        "diagram", help="draw one scenario's space-time diagram"
    )
    diagram_parser.add_argument("name", help="protocol name")
    diagram_parser.add_argument("--mode", default="crash",
                                choices=["crash", "omission"])
    diagram_parser.add_argument("-n", type=int, default=3)
    diagram_parser.add_argument("-t", type=int, default=1)
    diagram_parser.add_argument("--config", required=True,
                                help="initial values, e.g. 011")
    diagram_parser.add_argument("--crash", action="append", default=[],
                                metavar="P:K[:R1,R2]")
    diagram_parser.add_argument("--omit", action="append", default=[],
                                metavar="P:K:D1,D2")
    diagram_parser.add_argument(
        "--stats", action="store_true",
        help="print instrumentation totals after the diagram",
    )
    monitor_parser = subparsers.add_parser(
        "monitor",
        help="stream one scenario round by round with online K/E/C□ "
        "verdicts (incremental horizon extension)",
    )
    monitor_parser.add_argument(
        "--mode", default="crash",
        choices=["crash", "omission", "receive-omission"],
    )
    monitor_parser.add_argument("-n", type=int, default=3)
    monitor_parser.add_argument("-t", type=int, default=1)
    monitor_parser.add_argument("--config", required=True,
                                help="initial values, e.g. 011")
    monitor_parser.add_argument("--crash", action="append", default=[],
                                metavar="P:K[:R1,R2]")
    monitor_parser.add_argument("--omit", action="append", default=[],
                                metavar="P:K:D1,D2")
    monitor_parser.add_argument(
        "--recv-omit", action="append", default=[], metavar="P:K:S1,S2",
        help="receive-omission: P misses round-K messages from S1,S2",
    )
    monitor_parser.add_argument(
        "--rounds", type=int, default=3,
        help="how many rounds to feed (default 3)",
    )
    monitor_parser.add_argument(
        "--value", type=int, default=1,
        help="monitor ∃value (default 1)",
    )
    monitor_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write one monitor_round telemetry event per round to PATH",
    )
    monitor_parser.add_argument(
        "--stats", action="store_true",
        help="print instrumentation totals after the session",
    )
    batch_parser = subparsers.add_parser(
        "batch",
        help="sharded, checkpointed experiment execution (repro.exec)",
    )
    batch_parser.add_argument(
        "batch_action", choices=["run", "status", "top"],
        help="run a batch, list checkpointed batches, or watch one live",
    )
    batch_parser.add_argument(
        "batch_ids", nargs="*", metavar="ID",
        help="experiment ids with batch plans (E4, E5, E9, E14, E20, E21)",
    )
    batch_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_EXEC_WORKERS or min(4, cores))",
    )
    batch_parser.add_argument(
        "--resume", action="store_true",
        help="reuse checkpointed shards from a previous interrupted batch",
    )
    batch_parser.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="override the per-stage shard chunk size",
    )
    batch_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard timeout (default: REPRO_EXEC_TIMEOUT or 600)",
    )
    batch_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry budget per shard (default: REPRO_EXEC_RETRIES or 2)",
    )
    batch_parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="integer plan parameter override (repeatable), e.g. -t 2",
    )
    batch_parser.add_argument(
        "--stats", action="store_true",
        help="print instrumentation totals after the batch",
    )
    batch_parser.add_argument(
        "--once", action="store_true",
        help="batch top: print one frame and exit (scripting/CI)",
    )
    batch_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="batch top: refresh interval (default 2.0)",
    )
    metrics_parser = subparsers.add_parser(
        "metrics",
        help="Prometheus text exposition of instrumentation metrics",
    )
    metrics_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="fold a batch run's telemetry.jsonl instead of this "
        "process's (empty) totals",
    )
    metrics_parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="scrape a live serve daemon's healthz instead",
    )
    serve_parser = subparsers.add_parser(
        "serve",
        help="long-lived knowledge-query daemon (NDJSON over a unix "
        "socket; bounded queue, per-query budgets, streaming monitor)",
    )
    serve_parser.add_argument(
        "--socket", default=".repro_serve.sock", metavar="PATH",
        help="unix socket to listen on (default .repro_serve.sock)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="listen on TCP instead of the unix socket",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="query worker threads (default 2)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="admission-queue bound (default: REPRO_SERVE_MAX_QUEUE or 64)",
    )
    serve_parser.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="per-query point budget "
        "(default: REPRO_SERVE_MAX_POINTS or 4000000)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-query wall budget (default: REPRO_SERVE_TIMEOUT or 120)",
    )
    serve_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write one serve_request telemetry event per request to PATH",
    )
    serve_parser.add_argument(
        "--debug", action="store_true",
        help="admit the debug_sleep op (tests and benchmarks)",
    )
    query_parser = subparsers.add_parser(
        "query",
        help="one knowledge query, against a live daemon when reachable "
        "(in-process fallback otherwise)",
    )
    query_parser.add_argument(
        "query_op",
        choices=["eval", "explain", "extend", "monitor", "stats", "healthz"],
        help="request type",
    )
    query_parser.add_argument(
        "--socket", default=".repro_serve.sock", metavar="PATH",
        help="daemon unix socket (default .repro_serve.sock)",
    )
    query_parser.add_argument("--port", type=int, default=None, metavar="N")
    query_parser.add_argument("--host", default="127.0.0.1")
    query_parser.add_argument(
        "--local", action="store_true",
        help="skip the daemon; evaluate in-process",
    )
    query_parser.add_argument(
        "--remote", action="store_true",
        help="require the daemon; fail instead of falling back",
    )
    query_parser.add_argument(
        "--catalog", default=None, metavar="EXP/FORMULA",
        help="explain-catalog reference, e.g. E4/common-exists1",
    )
    query_parser.add_argument(
        "--formula", default=None, metavar="JSON",
        help='formula AST, e.g. \'{"kind": "exists", "value": 1}\'',
    )
    query_parser.add_argument(
        "--mode", default=None,
        choices=["crash", "omission", "receive-omission",
                 "general-omission"],
    )
    query_parser.add_argument("-n", type=int, default=None)
    query_parser.add_argument("-t", type=int, default=None)
    query_parser.add_argument("--horizon", type=int, default=None)
    query_parser.add_argument(
        "--point", default=None, metavar="RUN:TIME",
        help="also report whether the formula holds at this point",
    )
    query_parser.add_argument(
        "--kernel", default=None,
        choices=["bitset", "chunked", "reference"],
    )
    query_parser.add_argument(
        "--config", default=None, help="monitor: initial values, e.g. 011"
    )
    query_parser.add_argument("--crash", action="append", default=[],
                              metavar="P:K[:R1,R2]")
    query_parser.add_argument("--omit", action="append", default=[],
                              metavar="P:K:D1,D2")
    query_parser.add_argument("--recv-omit", action="append", default=[],
                              metavar="P:K:S1,S2")
    query_parser.add_argument("--rounds", type=int, default=3)
    query_parser.add_argument("--value", type=int, default=None)
    query_parser.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="in-process fallback: point budget override",
    )
    query_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="in-process fallback: wall budget override",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "protocols":
        return _cmd_protocols()
    if args.command == "stats":
        return _cmd_stats(args.clear, args.json)
    if args.command == "trace":
        return _cmd_trace(args.trace_ids, args.out, args.format)
    if args.command == "explain":
        return _cmd_explain(
            args.experiment, args.formula, args.point, args.n, args.t
        )
    if args.command == "bench-compare":
        return _cmd_bench_compare(
            args.snapshots, args.history, args.threshold
        )
    if args.command == "metrics":
        return _cmd_metrics(args.journal, args.socket)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "batch":
        status = _cmd_batch(args)
    elif args.command == "compare":
        status = _cmd_compare(args.names, args.mode, args.n, args.t)
    elif args.command == "diagram":
        status = _cmd_diagram(
            args.name, args.mode, args.n, args.t, args.config,
            args.crash, args.omit,
        )
    elif args.command == "monitor":
        status = _cmd_monitor(
            args.mode, args.n, args.t, args.config, args.crash,
            args.omit, args.recv_omit, args.rounds, args.value,
            args.journal,
        )
    else:
        status = _cmd_run(
            args.ids, args.all, args.skip, args.json, plan=args.plan
        )
    if getattr(args, "stats", False):
        print()
        _print_stats()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
