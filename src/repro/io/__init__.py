"""Serialization: JSON export/import of outcomes, results and systems."""

from .export import (
    FORMAT_VERSION,
    behavior_from_json,
    behavior_to_json,
    dump_outcome,
    experiment_result_to_json,
    load_outcome,
    outcome_from_json,
    outcome_to_json,
    pattern_from_json,
    pattern_to_json,
    run_outcome_from_json,
    run_outcome_to_json,
)
from .system_codec import (
    CODEC_VERSION,
    dump_system,
    load_system,
    system_from_payload,
    system_to_payload,
)

__all__ = [
    "CODEC_VERSION",
    "FORMAT_VERSION",
    "behavior_from_json",
    "behavior_to_json",
    "dump_outcome",
    "dump_system",
    "experiment_result_to_json",
    "load_outcome",
    "load_system",
    "outcome_from_json",
    "outcome_to_json",
    "pattern_from_json",
    "pattern_to_json",
    "run_outcome_from_json",
    "run_outcome_to_json",
    "system_from_payload",
    "system_to_payload",
]
