"""Serialization: JSON export/import of outcomes and experiment results."""

from .export import (
    FORMAT_VERSION,
    behavior_from_json,
    behavior_to_json,
    dump_outcome,
    experiment_result_to_json,
    load_outcome,
    outcome_from_json,
    outcome_to_json,
    pattern_from_json,
    pattern_to_json,
    run_outcome_from_json,
    run_outcome_to_json,
)

__all__ = [
    "FORMAT_VERSION",
    "behavior_from_json",
    "behavior_to_json",
    "dump_outcome",
    "experiment_result_to_json",
    "load_outcome",
    "outcome_from_json",
    "outcome_to_json",
    "pattern_from_json",
    "pattern_to_json",
    "run_outcome_from_json",
    "run_outcome_to_json",
]
