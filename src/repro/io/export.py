"""JSON export/import of scenarios, outcomes and experiment results.

Enables downstream analysis (plotting, regression tracking) without
re-running enumerations.  The format is stable and versioned; round-trip
fidelity is covered by tests:

* failure patterns serialize behaviour-by-behaviour with their mode;
* :class:`~repro.core.outcomes.ProtocolOutcome` round-trips completely
  (configurations, patterns, decisions, horizon);
* :class:`~repro.experiments.framework.ExperimentResult` exports one-way
  (results embed free-form tables meant for humans; they are not parsed
  back).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..core.outcomes import ProtocolOutcome, RunOutcome
from ..errors import ConfigurationError
from ..experiments.framework import ExperimentResult
from ..model.config import InitialConfiguration
from ..model.failures import (
    CrashBehavior,
    FailurePattern,
    GeneralOmissionBehavior,
    OmissionBehavior,
    ReceiveOmissionBehavior,
)

FORMAT_VERSION = 1


def _omissions_to_json(entries) -> List[List[Any]]:
    return [
        [round_number, sorted(processors)]
        for round_number, processors in entries
    ]


def _omissions_from_json(data) -> Dict[int, List[int]]:
    return {round_number: processors for round_number, processors in data}


def behavior_to_json(behavior) -> Dict[str, Any]:
    """Serialize any faulty behaviour to a tagged JSON object."""
    if isinstance(behavior, CrashBehavior):
        return {
            "kind": "crash",
            "crash_round": behavior.crash_round,
            "receivers": sorted(behavior.receivers),
        }
    if isinstance(behavior, OmissionBehavior):
        return {
            "kind": "omission",
            "omissions": _omissions_to_json(behavior.omissions),
        }
    if isinstance(behavior, ReceiveOmissionBehavior):
        return {
            "kind": "receive-omission",
            "omissions": _omissions_to_json(behavior.omissions),
        }
    if isinstance(behavior, GeneralOmissionBehavior):
        return {
            "kind": "general-omission",
            "send_omissions": _omissions_to_json(behavior.send_omissions),
            "receive_omissions": _omissions_to_json(
                behavior.receive_omissions
            ),
        }
    raise ConfigurationError(f"unknown behaviour {behavior!r}")


def behavior_from_json(data: Dict[str, Any]):
    """Inverse of :func:`behavior_to_json`."""
    kind = data.get("kind")
    if kind == "crash":
        return CrashBehavior(data["crash_round"], frozenset(data["receivers"]))
    if kind == "omission":
        return OmissionBehavior(_omissions_from_json(data["omissions"]))
    if kind == "receive-omission":
        return ReceiveOmissionBehavior(
            _omissions_from_json(data["omissions"])
        )
    if kind == "general-omission":
        return GeneralOmissionBehavior(
            _omissions_from_json(data["send_omissions"]),
            _omissions_from_json(data["receive_omissions"]),
        )
    raise ConfigurationError(f"unknown behaviour kind {kind!r}")


def pattern_to_json(pattern: FailurePattern) -> List[Dict[str, Any]]:
    """Serialize a failure pattern."""
    return [
        {"processor": processor, **behavior_to_json(behavior)}
        for processor, behavior in pattern.behaviors
    ]


def pattern_from_json(data: List[Dict[str, Any]]) -> FailurePattern:
    """Inverse of :func:`pattern_to_json`."""
    return FailurePattern(
        {entry["processor"]: behavior_from_json(entry) for entry in data}
    )


def run_outcome_to_json(run: RunOutcome) -> Dict[str, Any]:
    """Serialize one run's outcome."""
    return {
        "config": list(run.config.values),
        "pattern": pattern_to_json(run.pattern),
        "decisions": [
            None if record is None else [record[0], record[1]]
            for record in run.decisions
        ],
        "horizon": run.horizon,
    }


def run_outcome_from_json(data: Dict[str, Any]) -> RunOutcome:
    """Inverse of :func:`run_outcome_to_json`."""
    return RunOutcome(
        config=InitialConfiguration(data["config"]),
        pattern=pattern_from_json(data["pattern"]),
        decisions=tuple(
            None if record is None else (record[0], record[1])
            for record in data["decisions"]
        ),
        horizon=data["horizon"],
    )


def outcome_to_json(outcome: ProtocolOutcome) -> Dict[str, Any]:
    """Serialize a whole protocol outcome."""
    return {
        "format_version": FORMAT_VERSION,
        "protocol": outcome.name,
        "runs": [run_outcome_to_json(run) for run in outcome],
    }


def outcome_from_json(data: Dict[str, Any]) -> ProtocolOutcome:
    """Inverse of :func:`outcome_to_json`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported outcome format version {version!r}"
        )
    return ProtocolOutcome(
        data["protocol"],
        (run_outcome_from_json(entry) for entry in data["runs"]),
    )


def experiment_result_to_json(result: ExperimentResult) -> Dict[str, Any]:
    """Serialize an experiment result (one-way; tables stay as text)."""
    return {
        "format_version": FORMAT_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "ok": result.ok,
        "table": result.table,
        "notes": list(result.notes),
        "data": _jsonable(result.data),
    }


def _jsonable(value):
    """Best-effort conversion of experiment data payloads to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def dump_outcome(outcome: ProtocolOutcome, path: str) -> None:
    """Write a protocol outcome to a JSON file."""
    with open(path, "w") as handle:
        json.dump(outcome_to_json(outcome), handle)


def load_outcome(path: str) -> ProtocolOutcome:
    """Read a protocol outcome from a JSON file."""
    with open(path) as handle:
        return outcome_from_json(json.load(handle))
