"""Serialization codec for enumerated systems.

Round-trips a :class:`~repro.model.system.System` through a gzip-compressed
JSON payload so that the :class:`~repro.model.provider.SystemProvider` can
persist enumerations across processes instead of recomputing the
doubly-exponential run space from scratch.

The payload stores the interned :class:`~repro.model.views.ViewTable` as its
structural entries in id order plus, per run, the scenario (configuration and
failure pattern, via the existing :mod:`repro.io.export` pattern codec), the
view-id matrix and the delivery sets.  Decoding replays the table entries
into a fresh table — an append-only replay that reproduces the exact id
assignment — and reconstructs :class:`~repro.model.runs.Run` objects without
re-executing the full-information protocol.  The rebuilt system is
run-for-run identical to a fresh enumeration (same run order, same view ids,
same scenario and state indexes); tests validate this directly.

``CODEC_VERSION`` must be bumped whenever the payload layout *or* the
enumeration semantics change; the provider additionally keys cache files by
the library version, so stale caches are never read.

Alongside the portable JSON payload the provider keeps an optional
**pickle sidecar** (:func:`dump_system_pickle` / :func:`load_system_pickle`)
— same versioned-filename discipline, ~4-5x faster to load on the huge
cells because it skips both the table replay and the index rebuild.  The
sidecar is a *local trusted cache only*: pickle deserialization executes
arbitrary code, so these files must never be loaded from untrusted
directories (point ``REPRO_CACHE_DIR`` somewhere private, or set
``REPRO_PICKLE_CACHE=0`` to disable the sidecar entirely; the JSON payload
remains authoritative).
"""

from __future__ import annotations

import gzip
import json
import pickle
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError
from ..model.config import InitialConfiguration
from ..model.failures import FailureMode
from ..model.runs import Run
from ..model.system import System
from ..model.views import ViewTable, merge_entries
from .export import pattern_from_json, pattern_to_json

#: Version of the system payload layout.  Bump on any change to the layout
#: or to the enumeration semantics it captures.
CODEC_VERSION = 1


def system_to_payload(system: System) -> Dict[str, Any]:
    """Serialize *system* to a JSON-able payload."""
    entries: List[List[Any]] = []
    for entry in system.table.export_entries():
        if entry[0] == "leaf":
            entries.append(["L", entry[1], entry[2]])
        else:
            entries.append(
                ["N", entry[1], [[s, v] for s, v in entry[2]]]
            )
    runs: List[Dict[str, Any]] = []
    for run in system.runs:
        runs.append(
            {
                "config": list(run.config.values),
                "pattern": pattern_to_json(run.pattern),
                "views": [list(row) for row in run.views],
                "nonfaulty": sorted(run.nonfaulty),
                "deliveries": [
                    [sorted(senders) for senders in per_receiver]
                    for per_receiver in run.deliveries
                ],
            }
        )
    return {
        "codec_version": CODEC_VERSION,
        "n": system.n,
        "t": system.t,
        "horizon": system.horizon,
        "mode": None if system.mode is None else system.mode.value,
        "views": entries,
        "runs": runs,
    }


def system_from_payload(payload: Dict[str, Any]) -> System:
    """Inverse of :func:`system_to_payload`."""
    version = payload.get("codec_version")
    if version != CODEC_VERSION:
        raise ConfigurationError(
            f"unsupported system codec version {version!r}"
        )
    table = ViewTable()
    entries = []
    for entry in payload["views"]:
        if entry[0] == "L":
            entries.append(("leaf", entry[1], entry[2]))
        elif entry[0] == "N":
            entries.append(
                ("node", entry[1], tuple((s, v) for s, v in entry[2]))
            )
        else:
            raise ConfigurationError(f"unknown view entry kind {entry[0]!r}")
    mapping = merge_entries(table, entries)
    if mapping != list(range(len(mapping))):
        raise ConfigurationError("view table replay produced shifted ids")
    horizon = payload["horizon"]
    runs: List[Run] = []
    for data in payload["runs"]:
        run = Run(
            config=InitialConfiguration(data["config"]),
            pattern=pattern_from_json(data["pattern"]),
            horizon=horizon,
            views=[tuple(row) for row in data["views"]],
            nonfaulty=frozenset(data["nonfaulty"]),
            deliveries=[
                tuple(frozenset(senders) for senders in per_receiver)
                for per_receiver in data["deliveries"]
            ],
        )
        runs.append(run)
    mode: Optional[FailureMode] = (
        None if payload["mode"] is None else FailureMode(payload["mode"])
    )
    return System(payload["n"], payload["t"], horizon, runs, table, mode)


def dump_system(system: System, path: str) -> None:
    """Write *system* to *path* as gzip-compressed JSON."""
    with gzip.open(path, "wt", encoding="utf-8", compresslevel=1) as handle:
        json.dump(system_to_payload(system), handle, separators=(",", ":"))


def load_system(path: str) -> System:
    """Read a system written by :func:`dump_system`."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        return system_from_payload(json.load(handle))


#: Pickle protocol for the sidecar (highest: fastest, files are
#: version-stamped so cross-version portability is not required).
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def dump_system_pickle(system: System, path: str) -> None:
    """Write *system* to *path* as a pickle sidecar.

    Evaluation caches and the packed-kernel indexes are detached for the
    dump (they are derived state, can be huge, and are keyed by objects
    that need not pickle) and restored afterwards, so dumping never
    perturbs the live instance.  Detaching the chunked index also makes
    cache stamps *extension-aware*: a system produced by
    :func:`~repro.model.system.extend_system` carries a pre-seeded
    ``_chunked_index``, and stripping it keeps the sidecar byte-identical
    to one written from a fresh build of the same cell — the on-disk
    payload depends only on ``(mode, n, t, horizon)`` and the codec and
    library versions in the filename stamp, never on how the system was
    produced.
    """
    detached = (
        system._formula_cache,
        system._nonrigid_cache,
        system._components_cache,
        system._bitset_index,
        system._chunked_index,
    )
    system._formula_cache = {}
    system._nonrigid_cache = {}
    system._components_cache = {}
    system._bitset_index = None
    system._chunked_index = None
    try:
        with open(path, "wb") as handle:
            pickle.dump(system, handle, protocol=PICKLE_PROTOCOL)
    finally:
        (
            system._formula_cache,
            system._nonrigid_cache,
            system._components_cache,
            system._bitset_index,
            system._chunked_index,
        ) = detached


def load_system_pickle(path: str) -> System:
    """Read a system written by :func:`dump_system_pickle`.

    Only ever call this on files the provider itself wrote (see the module
    docstring's trust caveat).
    """
    with open(path, "rb") as handle:
        system = pickle.load(handle)
    if not isinstance(system, System):
        raise ConfigurationError(
            f"pickle sidecar {path} does not hold a System"
        )
    return system
