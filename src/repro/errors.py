"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish configuration problems from protocol-level
violations detected at run time.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A model object was constructed with inconsistent parameters.

    Examples: a failure pattern naming more than ``t`` faulty processors, a
    crash round outside the horizon, or an initial configuration whose length
    does not match ``n``.
    """


class ProtocolViolationError(ReproError):
    """A protocol produced behaviour that violates its own contract.

    The canonical case is a decision pair whose zero- and one-sets both fire
    for the same processor at the same point: the full-information protocol
    ``FIP(Z, O)`` is only well defined when the first firing is unambiguous.
    """


class SpecificationError(ReproError):
    """An agreement specification (EBA, SBA, ...) was violated by a run.

    Raised by the strict checking helpers in :mod:`repro.core.specs` when the
    caller asked for violations to be fatal rather than reported.
    """


class EvaluationError(ReproError):
    """A knowledge formula could not be evaluated over the given system."""


class ShardExecutionError(ReproError):
    """A batch shard could not be completed by the execution engine.

    Raised by :class:`~repro.exec.pool.ShardPool` when a shard keeps
    failing (worker death, timeout, payload-checksum mismatch or a task
    exception) after its retry budget is exhausted.
    """


class UnsupportedModeError(ReproError):
    """An operation was requested for a failure mode it does not support.

    For example the :class:`~repro.protocols.flood_sba.FloodSBA` baseline is
    only sound for crash failures; running it under omission failures raises
    this error instead of silently producing a protocol that can disagree.
    """
