"""Benchmarks for incremental horizon extension (extend vs rebuild).

The acceptance criterion of the extension tentpole, measured directly on
an E9-class cell (exhaustive omission ``n=3, t=1`` — the cell behind the
omission non-termination experiment): growing the horizon-2 system to
horizon 3 through ``extend_system`` must be **identical** to the fresh
horizon-3 enumeration and measurably cheaper, because it pays one new
round plus an amortized prefix remap instead of three rounds of
simulation per scenario.

The same A/B rides the bench-regression history through
``benchmarks/regression.py`` (``extend_omission_h2_to_h3`` vs
``enumerate_omission_system_h3``), so a regression in the incremental
path fails CI via ``repro-eba bench-compare``.
"""

import time

from repro.model.adversary import (
    ExhaustiveCrashAdversary,
    ExhaustiveOmissionAdversary,
)
from repro.model.system import build_system, extend_system


def _best_of(callable_, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_extend_beats_rebuild_on_e9_cell():
    """Acceptance: extending omission (3,1) h=2 -> h=3 must beat a fresh
    h=3 enumeration while producing the identical system."""
    base = build_system(ExhaustiveOmissionAdversary(3, 1, 2))
    adversary = ExhaustiveOmissionAdversary(3, 1, 3)

    fresh = build_system(adversary)
    extended = extend_system(base, adversary)
    assert [r.scenario_key() for r in extended.runs] == [
        r.scenario_key() for r in fresh.runs
    ]
    assert [r.views for r in extended.runs] == [r.views for r in fresh.runs]
    assert extended.table.export_entries() == fresh.table.export_entries()

    rebuild_seconds = _best_of(lambda: build_system(adversary))
    extend_seconds = _best_of(lambda: extend_system(base, adversary))
    assert extend_seconds < rebuild_seconds, (
        f"extension {extend_seconds:.3f}s not cheaper than fresh "
        f"rebuild {rebuild_seconds:.3f}s"
    )


def test_extend_streaming_rounds_stay_incremental(benchmark):
    """One monitor-style streaming pass: crash (3,1) grown 1 -> 4 round
    by round, timed end to end under the benchmark fixture."""

    def stream():
        system = build_system(ExhaustiveCrashAdversary(3, 1, 1))
        for horizon in (2, 3, 4):
            system = extend_system(
                system, ExhaustiveCrashAdversary(3, 1, horizon)
            )
        return system

    system = benchmark.pedantic(stream, rounds=1, iterations=1)
    assert system.horizon == 4
    benchmark.extra_info["runs"] = len(system.runs)
    benchmark.extra_info["views"] = len(system.table)
