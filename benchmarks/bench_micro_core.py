"""Micro-benchmarks for the reproduction's hot paths.

Unlike the experiment benches (one deterministic round each), these run
multi-round timings of the core operations so regressions in the model
checker or the simulator show up directly:

* full-information system enumeration;
* continual-common-knowledge evaluation — component fast path vs. the
  greatest-fixed-point reference;
* the two-step optimal construction;
* simulator throughput for the concrete protocols.
"""

import time

import pytest

from repro import trace
from repro.core.construction import two_step_optimization
from repro.core.decision_sets import empty_pair
from repro.knowledge.formulas import ContinualCommon, Exists
from repro.knowledge.nonrigid import NONFAULTY
from repro.knowledge.semantics import (
    eval_continual_common,
    eval_continual_common_components,
)
from repro.model.adversary import ExhaustiveCrashAdversary
from repro.model.builder import crash_system, omission_system
from repro.model.system import build_system
from repro.protocols.p0opt import p0opt
from repro.sim.engine import run_over_scenarios


def test_enumerate_crash_system_n4(benchmark):
    """Enumerate the n=4, t=1, horizon=3 crash system (1360 runs)."""
    benchmark(lambda: build_system(ExhaustiveCrashAdversary(4, 1, 3)))


def test_continual_ck_component_fast_path(benchmark):
    system = crash_system(4, 1, 3)
    phi = Exists(1).evaluate(system)
    run_level = phi.run_levels()

    def component_scan():
        # Drop the component memo so the union-find scan itself is timed.
        system._components_cache.clear()
        return eval_continual_common_components(system, NONFAULTY, run_level)

    benchmark(component_scan)


def test_continual_ck_fixpoint_reference(benchmark):
    system = crash_system(3, 1, 3)
    phi = Exists(1).evaluate(system)
    benchmark(lambda: eval_continual_common(system, NONFAULTY, phi))


def test_two_step_construction_crash_n3(benchmark):
    system = crash_system(3, 1, 3)

    def construct():
        system.clear_caches()
        return two_step_optimization(system, empty_pair())

    benchmark(construct)


def test_simulator_throughput_p0opt(benchmark):
    system = crash_system(4, 1, 3)
    scenarios = system.scenarios()
    benchmark(lambda: run_over_scenarios(p0opt(), scenarios, 3, 1))


def test_system_cache_warm_hit(benchmark):
    """A warm provider hit must be near-free compared to enumeration."""
    crash_system(4, 1, 3)  # populate the provider's LRU
    benchmark(lambda: crash_system(4, 1, 3))


def test_formula_cache_hit_path(benchmark):
    """Re-evaluating a cached formula must be near-free."""
    system = omission_system(3, 1, 3)
    formula = ContinualCommon(NONFAULTY, Exists(0))
    formula.evaluate(system)  # warm
    benchmark(lambda: formula.evaluate(system))


def test_tracing_overhead_within_5_percent():
    """Acceptance: keeping the span tracer enabled costs <=5% on
    enumeration (the most span-dense tier-1 workload)."""

    def workload():
        return build_system(ExhaustiveCrashAdversary(4, 1, 3))

    def measure(rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - start)
        return best

    workload()  # warm imports and allocator
    assert trace.TRACER.enabled
    enabled_seconds = measure()
    trace.TRACER.enabled = False
    try:
        disabled_seconds = measure()
    finally:
        trace.TRACER.enabled = True
        trace.TRACER.clear()

    assert enabled_seconds <= disabled_seconds * 1.05, (
        f"span-tracing overhead "
        f"{enabled_seconds / disabled_seconds - 1:.1%} exceeds 5% "
        f"({enabled_seconds:.3f}s vs {disabled_seconds:.3f}s)"
    )


def test_instrumentation_overhead_within_5_percent():
    """Acceptance: keeping counters, timers AND histograms enabled costs
    <=5% on enumeration (the counter/observe-dense tier-1 workload)."""
    from repro import obs

    def workload():
        return build_system(ExhaustiveCrashAdversary(4, 1, 3))

    def measure(rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - start)
        return best

    workload()  # warm imports and allocator
    assert obs.OBS.enabled
    enabled_seconds = measure()
    obs.OBS.enabled = False
    try:
        disabled_seconds = measure()
    finally:
        obs.OBS.enabled = True

    assert enabled_seconds <= disabled_seconds * 1.05, (
        f"instrumentation overhead "
        f"{enabled_seconds / disabled_seconds - 1:.1%} exceeds 5% "
        f"({enabled_seconds:.3f}s vs {disabled_seconds:.3f}s)"
    )
