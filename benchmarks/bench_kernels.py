"""Micro-benchmarks for the bitset evaluation kernel.

These pin each kernel explicitly (ignoring ``REPRO_EVAL_KERNEL``) and time
the operations the tentpole optimization packs into integer arithmetic:
boolean algebra over assignments, the knowledge/everyone sweeps, and the
common-knowledge greatest fixpoint.  The same workloads feed the
bench-regression job through ``benchmarks/regression.py``, so a kernel
slowdown fails CI via ``repro-eba bench-compare``.
"""

from repro.knowledge.formulas import Exists
from repro.knowledge.nonrigid import NONFAULTY
from repro.knowledge.semantics import (
    eval_common,
    eval_everyone,
    eval_knows,
)
from repro.model import kernels
from repro.model.builder import crash_system
from repro.model.system import TruthAssignment


def _fresh_operand(system):
    system.clear_caches()
    return Exists(1).evaluate(system)


def test_kernel_bitset_algebra_ops(benchmark):
    """1k conjoin/disjoin/negate/count rounds on the n=4 crash system."""
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.BITSET):
        phi = _fresh_operand(system)
        psi = phi.negate()

        def algebra():
            acc = phi
            for _ in range(1000):
                acc = acc.conjoin(psi).disjoin(phi).negate()
            return acc.count_true()

        benchmark(algebra)


def test_kernel_bitset_knows_sweep(benchmark):
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.BITSET):
        phi = _fresh_operand(system)
        benchmark(lambda: eval_knows(system, 0, phi))


def test_kernel_bitset_everyone_sweep(benchmark):
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.BITSET):
        phi = _fresh_operand(system)
        benchmark(lambda: eval_everyone(system, NONFAULTY, phi))


def test_kernel_bitset_common_fixpoint(benchmark):
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.BITSET):
        phi = _fresh_operand(system)
        benchmark(lambda: eval_common(system, NONFAULTY, phi))


def test_kernel_reference_common_fixpoint(benchmark):
    """The reference kernel on the same fixpoint, for the A/B ratio."""
    system = crash_system(3, 1, 3)
    with kernels.use_kernel(kernels.REFERENCE):
        phi = _fresh_operand(system)
        benchmark(lambda: eval_common(system, NONFAULTY, phi))


def test_kernel_speedup_on_common_fixpoint():
    """Acceptance guard: the bitset fixpoint beats the reference kernel by
    >=3x on the n=4 crash system (best of 3 rounds each)."""
    import time

    system = crash_system(4, 1, 3)

    def best_of(kernel_name, rounds=3):
        with kernels.use_kernel(kernel_name):
            phi = _fresh_operand(system)
            eval_common(system, NONFAULTY, phi)  # warm
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                eval_common(system, NONFAULTY, phi)
                best = min(best, time.perf_counter() - start)
        return best

    reference = best_of(kernels.REFERENCE)
    bitset = best_of(kernels.BITSET)
    assert bitset * 3 <= reference, (
        f"bitset common-knowledge fixpoint only "
        f"{reference / bitset:.1f}x faster ({bitset:.4f}s vs "
        f"{reference:.4f}s)"
    )


def test_kernel_bitset_pack_unpack_round_trip(benchmark):
    """from_rows -> to_rows round-trip cost on the n=4 crash system."""
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.BITSET):
        rows = _fresh_operand(system).to_rows()
        benchmark(
            lambda: TruthAssignment.from_rows(system, rows).to_rows()
        )
