"""E17 — multivalued agreement: the paper's "general case" extension.

Generalized race/optimized protocols over |V| = 2, 3, 4 with the binary
collapse check; see EXPERIMENTS.md for recorded results.
"""

from repro.experiments.e17_multivalued import run

from conftest import run_experiment_benchmark


def test_e17_multivalued(benchmark):
    run_experiment_benchmark(benchmark, run)
