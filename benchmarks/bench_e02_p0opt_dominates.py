"""E2 — Section 2.2: P0opt strictly dominates P0.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e02_p0opt_dominates import run

from conftest import run_experiment_benchmark


def test_e02_p0opt_dominates(benchmark):
    run_experiment_benchmark(benchmark, run)
