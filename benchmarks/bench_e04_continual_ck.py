"""E4 — Lemma 3.4: continual common knowledge axioms and strictness.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e04_continual_ck import run

from conftest import run_experiment_benchmark


def test_e04_continual_ck(benchmark):
    run_experiment_benchmark(benchmark, run)
