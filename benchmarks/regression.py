"""Produce one bench snapshot of the tier-1 micro benches.

Standalone runner (not a pytest file): times the same hot paths as
``bench_micro_core.py`` with a plain best-of-rounds ``perf_counter`` loop,
then appends the snapshot to the JSONL history so
``repro-eba bench-compare --history`` can diff consecutive CI runs.

Usage::

    PYTHONPATH=src python benchmarks/regression.py \
        --label ci-$GITHUB_SHA --history BENCH_HISTORY.jsonl

Timings use best-of-N (default 3) rounds: the minimum is the least noisy
location statistic for CI machines with background load.
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from typing import Callable, Dict, Optional

from repro.bench.regression import (
    BenchSnapshot,
    DEFAULT_HISTORY,
    append_history,
    compare_snapshots,
    load_history,
)


def _bench_enumerate_crash_n4() -> None:
    from repro.model.adversary import ExhaustiveCrashAdversary
    from repro.model.system import build_system

    build_system(ExhaustiveCrashAdversary(4, 1, 3))


def _bench_continual_ck_components() -> None:
    from repro.knowledge.formulas import Exists
    from repro.knowledge.nonrigid import NONFAULTY
    from repro.knowledge.semantics import eval_continual_common_components
    from repro.model.builder import crash_system

    system = crash_system(4, 1, 3)
    phi = Exists(1).evaluate(system)
    # Drop the component memo so the union-find scan itself is timed.
    system._components_cache.clear()
    eval_continual_common_components(system, NONFAULTY, phi.run_levels())


def _bench_continual_ck_fixpoint() -> None:
    from repro.knowledge.formulas import Exists
    from repro.knowledge.nonrigid import NONFAULTY
    from repro.knowledge.semantics import eval_continual_common
    from repro.model.builder import crash_system

    system = crash_system(3, 1, 3)
    phi = Exists(1).evaluate(system)
    eval_continual_common(system, NONFAULTY, phi)


def _bench_two_step_construction() -> None:
    from repro.core.construction import two_step_optimization
    from repro.core.decision_sets import empty_pair
    from repro.model.builder import crash_system

    system = crash_system(3, 1, 3)
    system.clear_caches()
    two_step_optimization(system, empty_pair())


def _bench_simulator_throughput() -> None:
    from repro.model.builder import crash_system
    from repro.protocols.p0opt import p0opt
    from repro.sim.engine import run_over_scenarios

    system = crash_system(4, 1, 3)
    run_over_scenarios(p0opt(), system.scenarios(), 3, 1)


def _kernel_fixpoint_bench(kernel_name: str) -> None:
    from repro.knowledge.formulas import Exists
    from repro.knowledge.nonrigid import NONFAULTY
    from repro.knowledge.semantics import eval_common
    from repro.model import kernels
    from repro.model.builder import crash_system

    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernel_name):
        system.clear_caches()
        eval_common(system, NONFAULTY, Exists(1).evaluate(system))


def _bench_kernel_bitset_fixpoint() -> None:
    _kernel_fixpoint_bench("bitset")


def _bench_kernel_chunked_fixpoint() -> None:
    _kernel_fixpoint_bench("chunked")


def _bench_kernel_reference_fixpoint() -> None:
    _kernel_fixpoint_bench("reference")


def _bench_kernel_chunked_fixpoint_native() -> None:
    """Chunked fixpoint with the optional C inner loop engaged.

    Only timed when the native backend compiles on this machine (the
    entry is simply absent otherwise — ``compare_snapshots`` treats an
    added/removed bench as informational, never a regression), so the
    numbers quantify the native-vs-numpy gap without making CI depend on
    a C compiler.
    """
    import os

    previous = os.environ.get("REPRO_CHUNKED_BACKEND")
    os.environ["REPRO_CHUNKED_BACKEND"] = "native"
    try:
        _kernel_fixpoint_bench("chunked")
    finally:
        if previous is None:
            os.environ.pop("REPRO_CHUNKED_BACKEND", None)
        else:
            os.environ["REPRO_CHUNKED_BACKEND"] = previous


_CHUNKED_1M_PAIR = []


def _bench_kernel_chunked_algebra_1m() -> None:
    """Limb-array boolean algebra at the 1M-point synthetic scale.

    The operand construction is cached across rounds so the timing is the
    algebra loop itself (mirroring ``bench_chunked.py``, where operands
    are built outside the benchmarked callable).
    """
    import random

    from repro.model.chunked import ChunkedAssignment

    if not _CHUNKED_1M_PAIR:
        num_runs, width = 1 << 18, 4

        class Shape:
            runs = range(num_runs)
            horizon = width - 1

        def rows(seed):
            rng = random.Random(seed)
            return [
                [rng.random() < 0.5 for _ in range(width)]
                for _ in range(num_runs)
            ]

        _CHUNKED_1M_PAIR.extend(
            ChunkedAssignment.from_rows(Shape(), rows(seed))
            for seed in (1, 2)
        )
    phi, psi = _CHUNKED_1M_PAIR
    acc = phi
    for _ in range(50):
        acc = acc.conjoin(psi).disjoin(phi).negate()
    acc.count_true()


_CHUNKED_10M_PAIR = []


def _bench_kernel_chunked_algebra_10m() -> None:
    """Limb-array boolean algebra at the 10M-point synthetic scale.

    The ROADMAP item-3 cell: operands are drawn directly as uint64 limbs
    (cached across rounds) so the timing is the algebra loop itself.
    Requires the numpy limb backend; on the pure-Python backend the bench
    degrades to the (much slower) row-construction path, so it is built
    through ``bench_chunked._chunked_operand`` which handles both.
    """
    import importlib.util
    import os
    import sys

    if not _CHUNKED_10M_PAIR:
        bench_dir = os.path.dirname(os.path.abspath(__file__))
        spec = importlib.util.spec_from_file_location(
            "_bench_chunked_module",
            os.path.join(bench_dir, "bench_chunked.py"),
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        _CHUNKED_10M_PAIR.extend(
            module._chunked_operand("10m", seed) for seed in (1, 2)
        )
    phi, psi = _CHUNKED_10M_PAIR
    acc = phi
    for _ in range(50):
        acc = acc.conjoin(psi).disjoin(phi).negate()
    acc.count_true()


_EXTEND_BASE = []


def _bench_extend_omission_h2_to_h3() -> None:
    """Incremental extension of the E9-class omission cell.

    The horizon-2 base is built once and cached across rounds, so the
    timing is the extension itself — the A side of the extend-vs-rebuild
    comparison whose B side is ``enumerate_omission_system_h3``.
    """
    from repro.model.adversary import ExhaustiveOmissionAdversary
    from repro.model.system import build_system, extend_system

    if not _EXTEND_BASE:
        _EXTEND_BASE.append(
            build_system(ExhaustiveOmissionAdversary(3, 1, 2))
        )
    extend_system(_EXTEND_BASE[0], ExhaustiveOmissionAdversary(3, 1, 3))


def _bench_enumerate_omission_h3() -> None:
    from repro.model.adversary import ExhaustiveOmissionAdversary
    from repro.model.system import build_system

    build_system(ExhaustiveOmissionAdversary(3, 1, 3))


def _bench_kernel_bitset_everyone() -> None:
    from repro.knowledge.formulas import Exists
    from repro.knowledge.nonrigid import NONFAULTY
    from repro.knowledge.semantics import eval_everyone
    from repro.model import kernels
    from repro.model.builder import crash_system

    system = crash_system(4, 1, 3)
    with kernels.use_kernel("bitset"):
        system.clear_caches()
        eval_everyone(system, NONFAULTY, Exists(1).evaluate(system))


#: The tier-1 micro benches tracked for regressions (mirrors
#: ``bench_micro_core.py``, ``bench_kernels.py`` and
#: ``bench_chunked.py``).
MICRO_BENCHES: Dict[str, Callable[[], None]] = {
    "enumerate_crash_system_n4": _bench_enumerate_crash_n4,
    "continual_ck_component_fast_path": _bench_continual_ck_components,
    "continual_ck_fixpoint_reference": _bench_continual_ck_fixpoint,
    "two_step_construction_crash_n3": _bench_two_step_construction,
    "simulator_throughput_p0opt": _bench_simulator_throughput,
    "kernel_bitset_common_fixpoint": _bench_kernel_bitset_fixpoint,
    "kernel_chunked_common_fixpoint": _bench_kernel_chunked_fixpoint,
    "kernel_reference_common_fixpoint": _bench_kernel_reference_fixpoint,
    "kernel_bitset_everyone_sweep": _bench_kernel_bitset_everyone,
    "extend_omission_h2_to_h3": _bench_extend_omission_h2_to_h3,
    "enumerate_omission_system_h3": _bench_enumerate_omission_h3,
    "kernel_chunked_algebra_1m": _bench_kernel_chunked_algebra_1m,
    "kernel_chunked_algebra_10m": _bench_kernel_chunked_algebra_10m,
}


#: What each bench evaluates with, for the per-entry kernel metadata:
#: ``None`` means no formula evaluation at all (pure construction or
#: simulation — no kernel is involved); otherwise a ``(requested, cell)``
#: pair where *requested* is a pinned kernel name (the bench enters
#: ``use_kernel`` or constructs that representation directly) or ``None``
#: for the ambient :func:`~repro.model.kernels.active_kernel`, and
#: *cell* names the system the bench evaluates on (its point count feeds
#: :func:`~repro.model.kernels.resolve_selection`, so any size upgrade —
#: e.g. ``bitset`` → ``chunked`` past the point limit — is reflected in
#: what gets recorded) or ``None`` for synthetic operands with no system.
BENCH_KERNELS: Dict[str, Optional[tuple]] = {
    "enumerate_crash_system_n4": None,
    "continual_ck_component_fast_path": (None, "crash-n4t1h3"),
    "continual_ck_fixpoint_reference": (None, "crash-n3t1h3"),
    "two_step_construction_crash_n3": (None, "crash-n3t1h3"),
    "simulator_throughput_p0opt": None,
    "kernel_bitset_common_fixpoint": ("bitset", "crash-n4t1h3"),
    "kernel_chunked_common_fixpoint": ("chunked", "crash-n4t1h3"),
    "kernel_reference_common_fixpoint": ("reference", "crash-n4t1h3"),
    "kernel_chunked_fixpoint_native": ("chunked", "crash-n4t1h3"),
    "kernel_bitset_everyone_sweep": ("bitset", "crash-n4t1h3"),
    "extend_omission_h2_to_h3": None,
    "enumerate_omission_system_h3": None,
    "kernel_chunked_algebra_1m": ("chunked", None),
    "kernel_chunked_algebra_10m": ("chunked", None),
}

#: Point counts of the cells named in :data:`BENCH_KERNELS`, fetched
#: lazily (after the benches ran these are provider cache hits).
_CELL_POINTS: Dict[str, Callable[[], int]] = {
    "crash-n4t1h3": lambda: _cell_points(4),
    "crash-n3t1h3": lambda: _cell_points(3),
}


def _cell_points(n: int) -> int:
    from repro.model.builder import crash_system

    return crash_system(n, 1, 3).num_points()


def entry_kernels(
    names, extra_kernels: Optional[Dict[str, str]] = None
) -> Dict[str, Optional[str]]:
    """The *effective* kernel each timed entry ran under, or ``None``.

    This is what the old snapshot-wide ``meta["kernel"]`` silently got
    wrong: it recorded :func:`~repro.model.kernels.active_kernel` — the
    *requested* kernel — even for benches that pin another kernel or
    whose system auto-upgrades past the bitset point limit.  Here every
    entry resolves through the same
    :func:`~repro.model.kernels.resolve_selection` rule the evaluator
    uses; externally measured walls take their kernel from the
    ``--extra NAME=SECONDS@KERNEL`` suffix (``None`` when not given).
    """
    from repro.model.kernels import active_kernel, resolve_selection

    ambient = active_kernel()
    points: Dict[str, int] = {}
    resolved: Dict[str, Optional[str]] = {}
    for name in names:
        if extra_kernels is not None and name in extra_kernels:
            resolved[name] = extra_kernels[name]
            continue
        info = BENCH_KERNELS.get(name)
        if info is None:
            resolved[name] = None
            continue
        requested, cell = info
        if requested is None:
            requested = ambient
        if cell is None:
            resolved[name] = requested
            continue
        if cell not in points:
            points[cell] = _CELL_POINTS[cell]()
        resolved[name] = resolve_selection(requested, points[cell])
    return resolved


def best_of(bench: Callable[[], None], rounds: int) -> float:
    """Best-of-*rounds* wall time, with one untimed warmup round."""
    bench()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        bench()
        best = min(best, time.perf_counter() - start)
    return best


def take_snapshot(
    label: str,
    rounds: int = 3,
    extra: Optional[Dict[str, float]] = None,
    extra_kernels: Optional[Dict[str, str]] = None,
) -> BenchSnapshot:
    """Time every micro bench; return the snapshot.

    ``extra`` merges externally measured walls into the snapshot — e.g.
    the sharded ``batch run E9`` wall clock, which is measured by the
    batch runner itself rather than re-run here — so end-to-end numbers
    ride the same history and regression gate as the micro benches.
    ``extra_kernels`` names the kernel each extra ran under (from the
    ``--extra NAME=SECONDS@KERNEL`` suffix) for the per-entry metadata.

    Snapshot metadata records both the ambient requested kernel
    (``meta["kernel"]``, kept for history compatibility) and the
    per-entry effective kernels (``meta["entry_kernels"]``) — see
    :func:`entry_kernels` for why the latter is the trustworthy one.
    """
    from repro.model import native

    timings: Dict[str, float] = dict(extra or {})
    for name, seconds in timings.items():
        print(f"{name:<40} {seconds:.6f}s (extra)", flush=True)
    benches = dict(MICRO_BENCHES)
    if native.available():
        benches["kernel_chunked_fixpoint_native"] = (
            _bench_kernel_chunked_fixpoint_native
        )
    for name, bench in benches.items():
        timings[name] = best_of(bench, rounds)
        print(f"{name:<40} {timings[name]:.6f}s", flush=True)
    from repro.model.kernels import active_kernel

    backend = "numpy"
    if native.requested() and native.available():
        backend = "native"
    return BenchSnapshot(
        label=label,
        timings=timings,
        meta={
            "rounds": rounds,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "kernel": active_kernel(),
            "entry_kernels": entry_kernels(sorted(timings), extra_kernels),
            "chunked_backend": backend,
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="record a micro-bench snapshot into the JSONL history"
    )
    parser.add_argument("--label", default="local", help="snapshot label")
    parser.add_argument(
        "--history", default=DEFAULT_HISTORY,
        help=f"JSONL history path (default {DEFAULT_HISTORY})",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--no-append", action="store_true",
        help="time only; do not write the history",
    )
    parser.add_argument(
        "--extra", action="append", default=[],
        metavar="NAME=SECONDS[@KERNEL]",
        help="record an externally measured wall (repeatable), e.g. "
        "--extra exec_e9_limb_shard_w4=4.7@chunked; the optional @KERNEL "
        "suffix names the effective kernel for the per-entry metadata",
    )
    args = parser.parse_args(argv)
    from repro.model.kernels import KERNELS

    extra: Dict[str, float] = {}
    extra_kernels: Dict[str, str] = {}
    for item in args.extra:
        name, _, rest = item.partition("=")
        seconds, _, kernel = rest.partition("@")
        if not name or not seconds:
            parser.error(
                f"--extra expects NAME=SECONDS[@KERNEL], got {item!r}"
            )
        try:
            extra[name] = float(seconds)
        except ValueError:
            parser.error(f"--extra {item!r}: {seconds!r} is not a number")
        if kernel:
            if kernel not in KERNELS:
                parser.error(
                    f"--extra {item!r}: kernel must be one of "
                    f"{', '.join(KERNELS)}"
                )
            extra_kernels[name] = kernel
    snapshot = take_snapshot(
        args.label,
        rounds=args.rounds,
        extra=extra,
        extra_kernels=extra_kernels,
    )
    previous = load_history(args.history)
    if not args.no_append:
        append_history(args.history, snapshot)
        print(f"appended snapshot {args.label!r} to {args.history}")
    if previous:
        report = compare_snapshots(previous[-1], snapshot)
        print()
        print(report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
