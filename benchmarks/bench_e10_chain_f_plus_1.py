"""E10 — Proposition 6.4: chain protocol decides by f+1.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e10_chain_f_plus_1 import run

from conftest import run_experiment_benchmark


def test_e10_chain_f_plus_1(benchmark):
    run_experiment_benchmark(benchmark, run)
