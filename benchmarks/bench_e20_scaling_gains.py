"""E20 — scaling sweep: optimal-EBA gains at larger n and t; see
EXPERIMENTS.md for recorded results.
"""

from repro.experiments.e20_scaling_gains import run

from conftest import run_experiment_benchmark


def test_e20_scaling_gains(benchmark):
    run_experiment_benchmark(benchmark, run)
