"""E14 — scaling ablation: enumeration and knowledge-evaluation cost across
``(mode, n, t, horizon)`` cells, plus concrete-protocol message complexity.

This is the one benchmark where the *time itself* is the result; the
experiment's own table records per-cell timings independent of the
pytest-benchmark wrapper.
"""

from repro.experiments.e14_scaling import run

from conftest import run_experiment_benchmark


def test_e14_scaling(benchmark):
    run_experiment_benchmark(benchmark, run)
