"""E15 — extension ablation: receive- and general-omission modes ([PT86]).

Measures which of the paper's guarantees survive outside the analyzed
failure modes; see EXPERIMENTS.md for the recorded verdicts.
"""

from repro.experiments.e15_beyond_modes import run

from conftest import run_experiment_benchmark


def test_e15_beyond_modes(benchmark):
    run_experiment_benchmark(benchmark, run)
