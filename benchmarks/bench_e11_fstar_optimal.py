"""E11 — Proposition 6.6: F* optimal for omission EBA.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e11_fstar_optimal import run

from conftest import run_experiment_benchmark


def test_e11_fstar_optimal(benchmark):
    run_experiment_benchmark(benchmark, run)
