"""Micro-benchmarks for the chunked limb-array evaluation kernel.

These pin the ``chunked`` kernel explicitly and time the workloads the
tentpole optimization moves onto fixed-width 64-bit limbs: boolean algebra
at three synthetic scales (16k / 131k / 1M points — below, at and far
beyond ``BITSET_POINT_LIMIT``), the knowledge/everyone sweeps, and the
common-knowledge greatest fixpoint, plus the pure-Python limb backend for
the no-numpy configuration.  The same workloads feed the bench-regression
job through ``benchmarks/regression.py``, so a chunked slowdown fails CI
via ``repro-eba bench-compare``.
"""

import random

from repro.knowledge.formulas import Exists
from repro.knowledge.nonrigid import NONFAULTY
from repro.knowledge.semantics import (
    eval_common,
    eval_everyone,
    eval_knows,
)
from repro.model import kernels
from repro.model.builder import crash_system
from repro.model.chunked import ChunkedAssignment, force_python_backend
from repro.model.system import BitsetAssignment, TruthAssignment

#: Synthetic assignment shapes: (num_runs, width) — 16k, 131k, ~1M and
#: ~10M points, i.e. below, at, past and far past BITSET_POINT_LIMIT.
#: The 10M cell is the ROADMAP item-3 scale the 2-D limb-matrix mode
#: targets; its operands are drawn directly as 64-bit limbs because
#: per-row Python construction dominates there.
SYNTHETIC_SHAPES = {
    "16k": (1 << 12, 4),
    "131k": (1 << 15, 4),
    "1m": (1 << 18, 4),
    "10m": (1 << 21, 5),
}


class _Shape:
    """Just enough of a ``System`` for the packed factories."""

    def __init__(self, num_runs, width):
        self.runs = range(num_runs)
        self.horizon = width - 1


def _random_rows(num_runs, width, seed=0):
    rng = random.Random(seed)
    return [
        [rng.random() < 0.5 for _ in range(width)] for _ in range(num_runs)
    ]


def _build(builder, shape, rows):
    if builder is BitsetAssignment:
        from repro.model.system import _pack_rows

        width = shape.horizon + 1
        return BitsetAssignment(
            _pack_rows(rows, width), len(shape.runs), width
        )
    return builder.from_rows(shape, rows)


def _synthetic_pair(shape_key, builder):
    num_runs, width = SYNTHETIC_SHAPES[shape_key]
    shape = _Shape(num_runs, width)
    phi = _build(builder, shape, _random_rows(num_runs, width, seed=1))
    psi = _build(builder, shape, _random_rows(num_runs, width, seed=2))
    return phi, psi


def _chunked_operand(shape_key, seed):
    """A random chunked operand built straight from 64-bit limbs.

    On the numpy backend the operand is drawn as uint64 limbs in one
    call (row-by-row Python packing dominates construction at the 10M
    scale); the pure-Python backend keeps the row path.
    """
    from repro.model import chunked as chunked_mod

    num_runs, width = SYNTHETIC_SHAPES[shape_key]
    if chunked_mod.backend_name() == "numpy":
        import numpy

        num_bits = num_runs * width
        rng = numpy.random.default_rng(seed)
        limbs = rng.integers(
            0, 1 << 64, size=-(-num_bits // 64), dtype=numpy.uint64
        )
        if num_bits % 64:
            limbs[-1] &= numpy.uint64(chunked_mod._tail_mask(num_bits))
        return ChunkedAssignment(limbs, num_runs, width)
    shape = _Shape(num_runs, width)
    return ChunkedAssignment.from_rows(
        shape, _random_rows(num_runs, width, seed=seed)
    )


def _algebra_loop(phi, psi, rounds=50):
    acc = phi
    for _ in range(rounds):
        acc = acc.conjoin(psi).disjoin(phi).negate()
    return acc.count_true()


def test_chunked_algebra_16k(benchmark):
    phi, psi = _synthetic_pair("16k", ChunkedAssignment)
    benchmark(lambda: _algebra_loop(phi, psi))


def test_chunked_algebra_131k(benchmark):
    phi, psi = _synthetic_pair("131k", ChunkedAssignment)
    benchmark(lambda: _algebra_loop(phi, psi))


def test_chunked_algebra_1m(benchmark):
    phi, psi = _synthetic_pair("1m", ChunkedAssignment)
    benchmark(lambda: _algebra_loop(phi, psi))


def test_chunked_algebra_10m(benchmark):
    """The 10M-point synthetic cell (ROADMAP item 3 scale)."""
    phi = _chunked_operand("10m", 1)
    psi = _chunked_operand("10m", 2)
    benchmark(lambda: _algebra_loop(phi, psi))


def test_bitset_algebra_1m(benchmark):
    """The big-int kernel on the same 1M-point workload, for the A/B."""
    phi, psi = _synthetic_pair("1m", BitsetAssignment)
    benchmark(lambda: _algebra_loop(phi, psi))


def test_chunked_python_backend_algebra_131k(benchmark):
    """The pure-Python limb backend (numpy absent) at the mid scale."""
    with force_python_backend():
        phi, psi = _synthetic_pair("131k", ChunkedAssignment)
        benchmark(lambda: _algebra_loop(phi, psi))


def _fresh_operand(system):
    system.clear_caches()
    return Exists(1).evaluate(system)


def test_chunked_knows_sweep(benchmark):
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.CHUNKED):
        phi = _fresh_operand(system)
        benchmark(lambda: eval_knows(system, 0, phi))


def test_chunked_everyone_sweep(benchmark):
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.CHUNKED):
        phi = _fresh_operand(system)
        benchmark(lambda: eval_everyone(system, NONFAULTY, phi))


def test_chunked_common_fixpoint(benchmark):
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.CHUNKED):
        phi = _fresh_operand(system)
        benchmark(lambda: eval_common(system, NONFAULTY, phi))


def test_chunked_beats_reference_on_common_fixpoint():
    """Acceptance guard: the chunked fixpoint beats the reference kernel
    on the n=4 crash system (best of 3 rounds each)."""
    import time

    system = crash_system(4, 1, 3)

    def best_of(kernel_name, rounds=3):
        with kernels.use_kernel(kernel_name):
            phi = _fresh_operand(system)
            eval_common(system, NONFAULTY, phi)  # warm
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                eval_common(system, NONFAULTY, phi)
                best = min(best, time.perf_counter() - start)
        return best

    reference = best_of(kernels.REFERENCE)
    chunked = best_of(kernels.CHUNKED)
    assert chunked * 2 <= reference, (
        f"chunked common-knowledge fixpoint only "
        f"{reference / chunked:.1f}x faster ({chunked:.4f}s vs "
        f"{reference:.4f}s)"
    )


def test_matrix_fixpoint_lockstep_beats_scalar_loop():
    """Acceptance guard for the 2-D limb-matrix mode: ``fixpoint_many``
    iterating an 8-formula panel in lockstep beats the same panel run as
    8 scalar fixpoints by >=2x (best of 3 rounds each), with
    bit-identical rows and iteration counts."""
    import time

    import pytest

    from repro.knowledge.semantics import _member_limbs, eval_knows

    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.CHUNKED):
        index = system.chunked_index()
        if not index.matrix_capable():
            pytest.skip("limb-matrix mode needs the numpy backend")
        masks = _member_limbs(system, index, NONFAULTY)
        base = Exists(1).evaluate(system)
        panel, acc = [], base
        for processor in range(system.n):
            acc = eval_knows(system, processor, acc)
            panel.append(acc.disjoin(base).limbs)
            panel.append(acc.negate().disjoin(base).limbs)

        def post(limbs):
            return limbs

        def scalar_loop():
            return [index.fixpoint(masks, phi, post) for phi in panel]

        def lockstep():
            return index.fixpoint_many(masks, panel, post)

        lockstep()  # warm
        scalar_rows = scalar_loop()
        rows, iters = lockstep()
        for (s_limbs, s_iters), m_limbs, m_iters in zip(
            scalar_rows, rows, iters
        ):
            assert [int(x) for x in s_limbs] == [int(x) for x in m_limbs]
            assert s_iters == m_iters

        def best_of(fn, rounds=3):
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        scalar = best_of(scalar_loop)
        matrix = best_of(lockstep)
        assert matrix * 2 <= scalar, (
            f"lockstep fixpoint_many only {scalar / matrix:.1f}x faster "
            f"({matrix:.4f}s vs {scalar:.4f}s for {len(panel)} rows)"
        )


def test_chunked_pack_unpack_round_trip(benchmark):
    """from_rows -> to_rows round-trip cost on the n=4 crash system."""
    system = crash_system(4, 1, 3)
    with kernels.use_kernel(kernels.CHUNKED):
        rows = _fresh_operand(system).to_rows()
        benchmark(
            lambda: TruthAssignment.from_rows(system, rows).to_rows()
        )
