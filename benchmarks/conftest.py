"""Benchmark harness configuration.

Each benchmark regenerates one experiment from DESIGN.md's index (the
paper's propositions/theorems as measured tables), asserts that the paper's
claim reproduces, and reports the wall time through ``pytest-benchmark``.

Experiments run once per benchmark (``rounds=1``): they are deterministic
end-to-end reproductions, not microbenchmarks, and several enumerate large
run spaces.  The reproduced tables are attached to the benchmark's
``extra_info`` so ``--benchmark-json`` output carries them.
"""

from __future__ import annotations


def run_experiment_benchmark(benchmark, runner, **params):
    """Run one experiment under the benchmark fixture and assert
    reproduction."""
    result = benchmark.pedantic(
        lambda: runner(**params), rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["ok"] = result.ok
    benchmark.extra_info["table"] = result.table
    assert result.ok, result.render()
    return result
