"""Benchmark harness configuration.

Each benchmark regenerates one experiment from DESIGN.md's index (the
paper's propositions/theorems as measured tables), asserts that the paper's
claim reproduces, and reports the wall time through ``pytest-benchmark``.

Experiments run once per benchmark (``rounds=1``): they are deterministic
end-to-end reproductions, not microbenchmarks, and several enumerate large
run spaces.  The reproduced tables are attached to the benchmark's
``extra_info`` so ``--benchmark-json`` output carries them.
"""

from __future__ import annotations

from repro import obs
from repro.experiments.framework import attach_instrumentation


def run_experiment_benchmark(benchmark, runner, **params):
    """Run one experiment under the benchmark fixture and assert
    reproduction."""
    before = obs.snapshot()
    result = benchmark.pedantic(
        lambda: runner(**params), rounds=1, iterations=1
    )
    attach_instrumentation(result, before)
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["ok"] = result.ok
    benchmark.extra_info["table"] = result.table
    benchmark.extra_info["instrumentation"] = result.data["instrumentation"]
    assert result.ok, result.render()
    return result
