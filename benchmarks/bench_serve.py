"""Cold-CLI vs warm-daemon latency for the knowledge-query service.

Standalone runner (not a pytest file — it spawns a ``repro-eba serve``
subprocess and times real wire round-trips):

1. **cold**: ``repro-eba query eval --local`` subprocesses — interpreter
   start-up, imports, cache load, evaluation — the price every
   one-shot CLI invocation pays;
2. **warm sequential**: the same eval against a resident daemon, p50/p99
   over many round-trips;
3. **warm concurrent**: 32 client threads issuing the query in parallel
   (the ISSUE acceptance load), per-request p50/p99 plus total wall.

The daemon must beat the cold path by at least ``--gate`` (default 10x,
the acceptance bar, p50 vs best-of cold); the script exits non-zero
otherwise.  ``--extra-out`` writes ``name=seconds`` lines for
``regression.py --extra`` so the serve numbers ride the bench history::

    PYTHONPATH=src python benchmarks/bench_serve.py --extra-out serve_extras.txt
    PYTHONPATH=src python benchmarks/regression.py --label serve \
        $(sed 's/^/--extra /' serve_extras.txt | tr '\n' ' ')
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:
    sys.path.insert(0, SRC_DIR)

QUERY_PARAMS = {
    "catalog": {"experiment": "E4", "formula": "everyone-exists1"}
}
CLI_QUERY = ["query", "eval", "--local", "--catalog", "E4/everyone-exists1"]


def _env() -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def bench_cold(rounds: int) -> List[float]:
    walls = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", *CLI_QUERY],
            cwd=REPO_ROOT,
            env=_env(),
            capture_output=True,
            timeout=300,
        )
        walls.append(time.perf_counter() - started)
        if result.returncode != 0:
            raise RuntimeError(
                f"cold query failed: {result.stderr.decode()}"
            )
    return walls


def spawn_daemon(socket_path: str) -> subprocess.Popen:
    from repro.serve.client import daemon_available

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", socket_path, "--workers", "2",
        ],
        cwd=REPO_ROOT,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon died at startup:\n{process.stdout.read()}"
            )
        if daemon_available(socket_path, timeout=0.5):
            return process
        time.sleep(0.2)
    process.kill()
    raise RuntimeError("daemon did not come up within 60s")


def bench_warm_sequential(socket_path: str, rounds: int) -> List[float]:
    from repro.serve.client import ServeClient

    latencies = []
    with ServeClient(socket_path) as client:
        for _ in range(3):  # warmup: cell becomes resident, paths hot
            client.request("eval", **QUERY_PARAMS)
        for _ in range(rounds):
            started = time.perf_counter()
            client.request("eval", **QUERY_PARAMS)
            latencies.append(time.perf_counter() - started)
    return latencies


def bench_warm_concurrent(
    socket_path: str, clients: int, per_client: int
) -> Dict[str, object]:
    from repro.serve.client import ServeClient

    latencies: List[float] = []
    errors: List[BaseException] = []
    lock = threading.Lock()

    def worker():
        try:
            with ServeClient(socket_path) as client:
                mine = []
                for _ in range(per_client):
                    started = time.perf_counter()
                    client.request("eval", **QUERY_PARAMS)
                    mine.append(time.perf_counter() - started)
            with lock:
                latencies.extend(mine)
        except BaseException as error:  # noqa: BLE001 — reported below
            with lock:
                errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - wall_started
    if errors:
        raise RuntimeError(f"{len(errors)} concurrent client(s) failed: "
                           f"{errors[0]}")
    return {"latencies": latencies, "wall": wall}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cold-CLI vs warm-daemon latency for repro.serve"
    )
    parser.add_argument(
        "--cold-rounds", type=int, default=3,
        help="cold CLI invocations to time (default 3)",
    )
    parser.add_argument(
        "--warm-rounds", type=int, default=50,
        help="sequential warm round-trips (default 50)",
    )
    parser.add_argument(
        "--clients", type=int, default=32,
        help="concurrent client threads (default 32, the acceptance load)",
    )
    parser.add_argument(
        "--per-client", type=int, default=4,
        help="queries per concurrent client (default 4)",
    )
    parser.add_argument(
        "--gate", type=float, default=10.0,
        help="required cold/warm speedup; 0 disables (default 10)",
    )
    parser.add_argument(
        "--extra-out", default=None, metavar="PATH",
        help="write name=seconds lines for regression.py --extra",
    )
    args = parser.parse_args(argv)

    print("cold CLI (`repro-eba query eval --local`):", flush=True)
    cold = bench_cold(args.cold_rounds)
    cold_best = min(cold)
    print(
        f"  best of {args.cold_rounds}: {cold_best:.3f}s "
        f"(all: {', '.join(f'{w:.3f}' for w in cold)})"
    )

    with tempfile.TemporaryDirectory(prefix="repro_serve_bench_") as tmp:
        socket_path = os.path.join(tmp, "bench.sock")
        process = spawn_daemon(socket_path)
        try:
            warm = bench_warm_sequential(socket_path, args.warm_rounds)
            warm_p50 = _percentile(warm, 0.50)
            warm_p99 = _percentile(warm, 0.99)
            print(f"warm daemon, sequential ({args.warm_rounds} round-trips):")
            print(
                f"  p50 {warm_p50 * 1000:.2f}ms   p99 {warm_p99 * 1000:.2f}ms"
            )
            concurrent = bench_warm_concurrent(
                socket_path, args.clients, args.per_client
            )
            conc = concurrent["latencies"]
            conc_p50 = _percentile(conc, 0.50)
            conc_p99 = _percentile(conc, 0.99)
            print(
                f"warm daemon, {args.clients} concurrent clients x "
                f"{args.per_client} queries:"
            )
            print(
                f"  p50 {conc_p50 * 1000:.2f}ms   p99 {conc_p99 * 1000:.2f}ms"
                f"   total wall {concurrent['wall']:.3f}s"
            )
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=30)
        if returncode != 0:
            print(f"daemon exited with status {returncode}", file=sys.stderr)
            return 1
        if os.path.exists(socket_path):
            print("daemon left its socket file behind", file=sys.stderr)
            return 1

    speedup = cold_best / warm_p50 if warm_p50 > 0 else float("inf")
    print(f"speedup (cold best / warm p50): {speedup:.1f}x")

    extras = {
        "serve_cold_cli_eval": cold_best,
        "serve_warm_eval_p50": warm_p50,
        "serve_warm_eval_p99": warm_p99,
        "serve_concurrent32_p50": conc_p50,
        "serve_concurrent32_p99": conc_p99,
        "serve_concurrent32_wall": concurrent["wall"],
    }
    if args.extra_out:
        with open(args.extra_out, "w", encoding="utf-8") as handle:
            for name, seconds in extras.items():
                handle.write(f"{name}={seconds:.6f}\n")
        print(f"wrote {len(extras)} extra(s) to {args.extra_out}")

    if args.gate and speedup < args.gate:
        print(
            f"FAIL: warm daemon is only {speedup:.1f}x faster than the "
            f"cold CLI (gate: {args.gate:g}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
