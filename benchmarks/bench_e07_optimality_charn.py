"""E7 — Theorem 5.3: optimality characterization.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e07_optimality_charn import run

from conftest import run_experiment_benchmark


def test_e07_optimality_charn(benchmark):
    run_experiment_benchmark(benchmark, run)
