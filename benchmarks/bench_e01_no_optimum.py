"""E1 — Proposition 2.1: no optimum EBA protocol exists.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e01_no_optimum import run

from conftest import run_experiment_benchmark


def test_e01_no_optimum(benchmark):
    run_experiment_benchmark(benchmark, run)
