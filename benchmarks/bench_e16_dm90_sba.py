"""E16 — the [DM90] optimum-SBA baseline, reproduced concretely.

The waste-based rule matches the common-knowledge oracle decision-for-
decision; see EXPERIMENTS.md for the recorded comparison.
"""

from repro.experiments.e16_dm90_sba import run

from conftest import run_experiment_benchmark


def test_e16_dm90_sba(benchmark):
    run_experiment_benchmark(benchmark, run)
