"""E18 — uniform agreement ablation ([Nei90]/[NB92], Section 7).

Measures the non-uniformity of early-deciding EBA vs. the uniform
simultaneous baselines; see EXPERIMENTS.md for recorded results.
"""

from repro.experiments.e18_uniform_agreement import run

from conftest import run_experiment_benchmark


def test_e18_uniform_agreement(benchmark):
    run_experiment_benchmark(benchmark, run)
