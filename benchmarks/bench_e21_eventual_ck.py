"""E21 — Section 3.2: eventual common knowledge is the wrong tool;
the F₀ protocol is dominated by the continual-common-knowledge optima.
See EXPERIMENTS.md for recorded results.
"""

from repro.experiments.e21_eventual_ck import run

from conftest import run_experiment_benchmark


def test_e21_eventual_ck(benchmark):
    run_experiment_benchmark(benchmark, run)
