"""E6 — Theorem 5.2: two-step optimal construction.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e06_two_step import run

from conftest import run_experiment_benchmark


def test_e06_two_step(benchmark):
    run_experiment_benchmark(benchmark, run)
