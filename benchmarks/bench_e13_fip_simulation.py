"""E13 — Proposition 2.2: full-information universality.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e13_fip_simulation import run

from conftest import run_experiment_benchmark


def test_e13_fip_simulation(benchmark):
    run_experiment_benchmark(benchmark, run)
