"""E9 — Proposition 6.3: omission-mode non-termination of ``F^{Λ,2}``.

The heavy cell of the suite: enumerates the FULL omission system at
``n = 4, t = 2, horizon = 2`` (≈385k runs, ~2 minutes, ~3 GB) so the
knowledge tests are exact, and verifies that in the witness run (all values
1, processor 0 silent forever) no nonfaulty processor ever decides.

Deselect with ``-k "not e09"`` for a quick pass.
"""

from repro.experiments.e09_omission_nontermination import run

from conftest import run_experiment_benchmark


def test_e09_omission_nontermination(benchmark):
    run_experiment_benchmark(benchmark, run)
