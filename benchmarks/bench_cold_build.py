"""Cold-path construction gate: arrays-first build vs the object graph.

Standalone runner (not a pytest file — every measurement needs a fresh,
empty cache directory, which pytest-benchmark's repeated calibration
rounds would defeat):

1. **arrays-first**: a cold ``SystemProvider.get_arrays`` on the
   E9-class omission cell — the fastbuild path that enumerates straight
   into ``SystemArrays`` index tables, never materializing ``Run`` or
   ``ViewTable`` objects — followed by the limb-shard evaluation core
   (``LimbBlockPartition`` construction plus the NONFAULTY
   component-label sweep over every block, exactly what the batch plans
   and the planner seed from);
2. **object graph** (the limb-shard baseline): the same cell and the
   same evaluation, but built through ``SystemProvider.get`` — per-point
   scenario enumeration, view interning, run construction — with the
   arrays projected from the finished system.

Both legs start from an empty cache, so the ratio is the cold-path win
the arrays-first builder exists for.  The script exits non-zero unless
arrays-first beats the baseline by at least ``--gate`` (default 2x, the
acceptance bar).  ``--extra-out`` writes ``name=seconds[@kernel]``
lines for ``regression.py --extra`` so the cold numbers ride the bench
history and its regression gate::

    PYTHONPATH=src python benchmarks/bench_cold_build.py --extra-out cold_extras.txt
    PYTHONPATH=src python benchmarks/regression.py --label cold \
        $(sed 's/^/--extra /' cold_extras.txt | tr '\n' ' ')
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from typing import Dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:
    sys.path.insert(0, SRC_DIR)


def _evaluate(arrays) -> int:
    """The limb-shard evaluation core both legs run identically.

    Builds the block partition and sweeps NONFAULTY component labels
    over every block (welded with ``merge_component_labels``) — the
    Corollary 3.3 reachability pass the E4/E9/E21 plans and the
    planner's block seeding are built on.  Returns the number of
    labelled runs so the work cannot be dead-code-eliminated.
    """
    from repro.model.partition import (
        LimbBlockPartition,
        merge_component_labels,
    )

    partition = LimbBlockPartition.from_arrays(arrays)
    nf_limbs = [
        partition.nonfaulty_limbs(processor)
        for processor in range(arrays.n)
    ]
    flags = partition.state_flags(range(partition.num_views))
    block_results = [
        partition.component_labels(desc["block"], flags, nf_limbs)
        for desc in partition.block_descriptors()
    ]
    labels = merge_component_labels(partition.num_runs, block_results)
    return len(labels)


def _cold_leg(n: int, t: int, horizon: int, *, legacy: bool) -> float:
    """One cold build+eval from an empty cache; returns the wall time."""
    from repro.model.failures import FailureMode
    from repro.model.partition import SystemArrays
    from repro.model.provider import SystemProvider

    directory = tempfile.mkdtemp(prefix="repro-cold-bench-")
    try:
        provider = SystemProvider(cache_dir=directory)
        start = time.perf_counter()
        if legacy:
            system = provider.get(FailureMode.OMISSION, n, t, horizon)
            arrays = SystemArrays.from_system(system)
        else:
            arrays = provider.get_arrays(FailureMode.OMISSION, n, t, horizon)
        _evaluate(arrays)
        return time.perf_counter() - start
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cold arrays-first vs object-graph build+eval gate"
    )
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--t", type=int, default=2)
    parser.add_argument("--horizon", type=int, default=2)
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="best-of rounds for the arrays-first leg (each from a "
        "fresh empty cache); the slow baseline leg always runs once",
    )
    parser.add_argument(
        "--gate", type=float, default=2.0,
        help="minimum baseline/arrays-first speedup (default 2.0)",
    )
    parser.add_argument(
        "--skip-gate", action="store_true",
        help="measure only; do not enforce the speedup gate",
    )
    parser.add_argument(
        "--extra-out", metavar="PATH",
        help="write name=seconds[@kernel] lines for regression.py --extra",
    )
    args = parser.parse_args(argv)
    cell = f"omission-n{args.n}t{args.t}h{args.horizon}"

    fast = min(
        _cold_leg(args.n, args.t, args.horizon, legacy=False)
        for _ in range(max(1, args.rounds))
    )
    print(f"cold-build ({cell}, arrays-first) {fast:.3f}s", flush=True)
    legacy = _cold_leg(args.n, args.t, args.horizon, legacy=True)
    print(f"cold-build-legacy ({cell}, object graph) {legacy:.3f}s")
    speedup = legacy / fast if fast > 0 else float("inf")
    print(f"speedup {speedup:.2f}x (gate {args.gate:.2f}x)")

    extras: Dict[str, str] = {
        # The limb-shard eval leg runs on chunked limb semantics; the
        # per-entry kernel metadata records that via the @ suffix.
        "cold-build": f"{fast:.6f}@chunked",
        "cold-build-legacy": f"{legacy:.6f}@chunked",
    }
    if args.extra_out:
        with open(args.extra_out, "w") as handle:
            for name, value in extras.items():
                handle.write(f"{name}={value}\n")
        print(f"wrote {args.extra_out}")

    if not args.skip_gate and speedup < args.gate:
        print(
            f"FAIL: arrays-first cold build+eval is only {speedup:.2f}x "
            f"the object-graph baseline (need >= {args.gate:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
