"""Benchmarks for the SystemProvider pipeline.

These measure the acceptance criteria of the provider refactor directly:

* warm-path speedup — the second request for crash ``n=5, t=2`` through the
  provider must be at least 5x faster than the cold enumeration (it is an
  in-memory LRU hit; the cross-process disk path is exercised separately);
* parallel enumeration — the chunked multiprocessing build must produce a
  byte-identical run order to the serial build, and must beat it on wall
  time when at least two cores are available;
* instrumentation overhead — keeping :mod:`repro.obs` enabled must cost at
  most 5% on an enumeration-heavy workload.

The crash ``n=5, t=2`` point uses horizon 1: the provider layers are
horizon-independent, and horizon 1 keeps the cold build around 6s instead
of the minute-scale horizon-2 space.
"""

import os
import time

import pytest

from repro import obs
from repro.model.adversary import ExhaustiveOmissionAdversary
from repro.model.failures import FailureMode
from repro.model.provider import SystemProvider
from repro.model.system import build_system


def test_provider_warm_path_speedup(tmp_path):
    """Acceptance: repeated build of crash n=5, t=2 must be >=5x faster."""
    provider = SystemProvider(cache_dir=str(tmp_path))

    start = time.perf_counter()
    cold = provider.get(FailureMode.CRASH, 5, 2, 1)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = provider.get(FailureMode.CRASH, 5, 2, 1)
    warm_seconds = time.perf_counter() - start

    assert warm is cold
    assert provider.cache_info()["hits"] == 1
    assert warm_seconds * 5 <= cold_seconds, (
        f"warm path {warm_seconds:.6f}s not 5x faster than "
        f"cold {cold_seconds:.3f}s"
    )


def test_provider_disk_warm_path(tmp_path, benchmark):
    """Loading crash n=5, t=2 from the disk cache beats re-enumeration."""
    seeder = SystemProvider(cache_dir=str(tmp_path))
    start = time.perf_counter()
    built = seeder.get(FailureMode.CRASH, 5, 2, 1)
    cold_seconds = time.perf_counter() - start

    def load_cold_process():
        reader = SystemProvider(cache_dir=str(tmp_path))
        system = reader.get(FailureMode.CRASH, 5, 2, 1)
        assert reader.cache_info()["disk_hits"] == 1
        return system

    loaded = benchmark(load_cold_process)
    assert len(loaded.runs) == len(built.runs)
    benchmark.extra_info["cold_build_seconds"] = round(cold_seconds, 3)


def test_parallel_enumeration_matches_serial():
    """Acceptance: parallel cold enumeration of omission n=4, t=1,
    horizon=3 yields a byte-identical run order; on a multi-core box it
    must also be faster than the serial build."""
    adversary = ExhaustiveOmissionAdversary(4, 1, 3)

    start = time.perf_counter()
    serial = build_system(adversary)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = build_system(adversary, workers=2)
    parallel_seconds = time.perf_counter() - start

    assert [r.scenario_key() for r in parallel.runs] == [
        r.scenario_key() for r in serial.runs
    ]
    assert [r.views for r in parallel.runs] == [r.views for r in serial.runs]
    assert parallel.table.export_entries() == serial.table.export_entries()

    if (os.cpu_count() or 1) >= 2:
        assert parallel_seconds < serial_seconds, (
            f"parallel build {parallel_seconds:.3f}s not faster than "
            f"serial {serial_seconds:.3f}s on {os.cpu_count()} cores"
        )
    else:
        pytest.skip(
            "single-core host: correctness asserted, speedup not measurable"
        )


def test_instrumentation_overhead_within_5_percent():
    """Acceptance: enabling repro.obs costs <=5% on enumeration."""

    def workload():
        return build_system(ExhaustiveOmissionAdversary(3, 1, 3))

    def measure(rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - start)
        return best

    workload()  # warm imports and allocator
    enabled_seconds = measure()
    obs.OBS.enabled = False
    try:
        disabled_seconds = measure()
    finally:
        obs.OBS.enabled = True

    assert enabled_seconds <= disabled_seconds * 1.05, (
        f"instrumentation overhead "
        f"{enabled_seconds / disabled_seconds - 1:.1%} exceeds 5% "
        f"({enabled_seconds:.3f}s vs {disabled_seconds:.3f}s)"
    )
