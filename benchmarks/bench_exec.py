"""Micro-benchmarks for the sharded execution engine.

Two costs matter for the engine itself (the shard *payloads* are someone
else's wall time): how fast the supervised pool turns around small shards
(fork, dispatch, heartbeat, checksum, collect), and how fast a fully
checkpointed batch resumes (manifest + per-shard validation with zero
shards re-executed).  Both feed the bench-regression job, so a scheduler
or checkpoint-format slowdown fails CI via ``repro-eba bench-compare``.
"""

from __future__ import annotations

from repro.exec import Shard, ShardPool, register_task, run_batch
from repro.exec.plan import BatchPlan, Stage
from repro.experiments.framework import ExperimentResult


@register_task("bench.sum")
def _bench_sum(params):
    return {"total": sum(range(params["start"], params["stop"]))}


def _shards(count, width=1000):
    return [
        Shard(
            shard_id=f"bench/{index}",
            task="bench.sum",
            params={"start": index * width, "stop": (index + 1) * width},
            stage="bench",
        )
        for index in range(count)
    ]


def _plan(count):
    def make(context):
        return _shards(count)

    def reduce(results, context):
        context["totals"] = [
            results[f"bench/{index}"]["total"] for index in range(count)
        ]

    def finalize(context):
        return ExperimentResult(
            experiment_id="EX",
            title="exec bench",
            paper_claim="(engine benchmark)",
            ok=True,
            table="bench",
            data={"totals": context["totals"]},
        )

    return BatchPlan(
        experiment_id="EX",
        params={"count": count},
        stages=[Stage("bench", make, reduce)],
        finalize=finalize,
    )


def test_exec_pool_shard_throughput(benchmark):
    """16 trivial shards through a 2-worker pool: pure engine overhead."""
    shards = _shards(16)

    def run():
        with ShardPool(2, backoff=0.01) as pool:
            results = pool.run(shards)
        assert len(results) == 16
        return results

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_exec_resume_overhead(benchmark, tmp_path):
    """Resuming a fully checkpointed 32-shard batch re-executes nothing;
    this times the manifest + per-shard validation path alone."""
    root = str(tmp_path / "exec")
    run_batch(_plan(32), workers=2, checkpoint_root=root)

    def resume():
        result = run_batch(_plan(32), workers=1, resume=True, checkpoint_root=root)
        assert result.data["batch"]["resumed"] == 32
        return result

    benchmark.pedantic(resume, rounds=3, iterations=1)
