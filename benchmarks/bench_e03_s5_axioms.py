"""E3 — Proposition 3.1: S5 axioms for K_i.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e03_s5_axioms import run

from conftest import run_experiment_benchmark


def test_e03_s5_axioms(benchmark):
    run_experiment_benchmark(benchmark, run)
