"""E19 — Byzantine EIG and the n > 3t threshold (Section 7 conjecture's
classical substrate); see EXPERIMENTS.md for recorded results.
"""

from repro.experiments.e19_byzantine_eig import run

from conftest import run_experiment_benchmark


def test_e19_byzantine_eig(benchmark):
    run_experiment_benchmark(benchmark, run)
