"""E8 — Theorems 6.1/6.2: crash-mode collapse of F^{Λ,2}.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e08_crash_equivalence import run

from conftest import run_experiment_benchmark


def test_e08_crash_equivalence(benchmark):
    run_experiment_benchmark(benchmark, run)
