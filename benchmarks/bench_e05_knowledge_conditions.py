"""E5 — Propositions 4.3/4.4: knowledge conditions for agreement.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e05_knowledge_conditions import run

from conftest import run_experiment_benchmark


def test_e05_knowledge_conditions(benchmark):
    run_experiment_benchmark(benchmark, run)
