"""E12 — [DRS90] motivation: EBA decides earlier than SBA.

Regenerates the experiment table and asserts the paper's claim holds; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.e12_eba_vs_sba import run

from conftest import run_experiment_benchmark


def test_e12_eba_vs_sba(benchmark):
    run_experiment_benchmark(benchmark, run)
